// Cross-module integration scenarios: remote-node gRPC fallback, migration
// under live tenants, mixed workloads on the shared fabric, and end-to-end
// data integrity through every layer.
#include <gtest/gtest.h>

#include <thread>

#include "loadgen/loadgen.h"
#include "remote/remote_runtime.h"
#include "testbed/testbed.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

namespace bf {
namespace {

workloads::WorkloadFactory sobel_factory(std::size_t w = 320,
                                         std::size_t h = 240) {
  return [w, h] { return std::make_unique<workloads::SobelWorkload>(w, h); };
}

workloads::WorkloadFactory mm_factory(std::size_t n = 128) {
  return [n] { return std::make_unique<workloads::MatMulWorkload>(n); };
}

TEST(Integration, CrossNodeAccessFallsBackToGrpc) {
  // A client on node C reaching node B's manager: no shared namespace, so
  // the session must run without shm and still work.
  testbed::TestbedOptions options;
  options.functional_boards = true;
  testbed::Testbed bed(options);

  remote::ManagerAddress address;
  address.endpoint = &bed.manager("B").endpoint();
  address.transport =
      net::remote_grpc(sim::make_node_c(), sim::make_node_b());
  address.node_shm = &bed.node_shm("C");  // the WRONG node's namespace
  address.prefer_shared_memory = true;
  remote::RemoteRuntime runtime({address});

  ocl::Session session("cross-node");
  auto context = runtime.create_context("fpga-B", session);
  ASSERT_TRUE(context.ok()) << context.status().to_string();
  workloads::SobelWorkload workload(64, 48);
  ASSERT_TRUE(workload.setup(*context.value()).ok());
  ASSERT_TRUE(workload.handle_request(*context.value()).ok());
  // Results still correct over the pure gRPC data path.
  EXPECT_EQ(workload.last_output(),
            workloads::sobel_reference(workload.input_frame(), 64, 48));
  workload.teardown();
}

TEST(Integration, CrossNodeIsSlowerThanColocated) {
  testbed::Testbed bed;  // timing-only boards

  auto run_with = [&](net::TransportCost transport,
                      shm::Namespace* ns) -> double {
    remote::ManagerAddress address;
    address.endpoint = &bed.manager("B").endpoint();
    address.transport = transport;
    address.node_shm = ns;
    remote::RemoteRuntime runtime({address});
    ocl::Session session("probe");
    auto context = runtime.create_context("fpga-B", session);
    BF_CHECK(context.ok());
    workloads::SobelWorkload workload(640, 480);
    BF_CHECK(workload.setup(*context.value()).ok());
    // Warm request then measured request.
    BF_CHECK(workload.handle_request(*context.value()).ok());
    const vt::Time before = session.now();
    BF_CHECK(workload.handle_request(*context.value()).ok());
    workload.teardown();
    return (session.now() - before).ms();
  };

  const double local = run_with(net::local_control(sim::make_node_b()),
                                &bed.node_shm("B"));
  const double cross = run_with(
      net::remote_grpc(sim::make_node_c(), sim::make_node_b()), nullptr);
  EXPECT_GT(cross, local * 1.5);
}

TEST(Integration, MigrationUnderLoadKeepsServing) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-1", sobel_factory()).ok());
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-2", sobel_factory()).ok());
  auto instance = bed.gateway().instance("sobel-1");
  ASSERT_TRUE(instance->invoke().ok());  // warm

  // Drive sobel-1 while sobel-2's pod is replaced (simulated migration).
  std::thread migrator([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    auto replaced = bed.cluster().replace_pod("sobel-2-0");
    EXPECT_TRUE(replaced.ok());
  });
  int ok = 0;
  for (int i = 0; i < 30; ++i) {
    if (instance->invoke().ok()) ++ok;
  }
  migrator.join();
  EXPECT_EQ(ok, 30);
  // The replacement instance is also functional.
  auto moved = bed.gateway().instance("sobel-2");
  ASSERT_NE(moved, nullptr);
  EXPECT_TRUE(moved->invoke().ok());
}

TEST(Integration, MixedWorkloadsServeConcurrently) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-1", sobel_factory()).ok());
  ASSERT_TRUE(bed.deploy_blastfunction("mm-1", mm_factory()).ok());
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-2", sobel_factory()).ok());

  std::vector<loadgen::DriveSpec> specs;
  for (const char* fn : {"sobel-1", "mm-1", "sobel-2"}) {
    loadgen::DriveSpec spec;
    spec.function = fn;
    spec.target_rps = 10;
    spec.warmup = vt::Duration::seconds(3);
    spec.duration = vt::Duration::seconds(3);
    specs.push_back(spec);
  }
  auto results = loadgen::drive_all(bed.gateway(), specs);
  for (const auto& result : results) {
    EXPECT_EQ(result.errors, 0u) << result.function;
    EXPECT_NEAR(result.processed_rps, 10.0, 1.0) << result.function;
  }
  // Accelerator exclusivity held: sobel and mm never share a device.
  auto sobel_device = bed.registry().device_of_instance("sobel-1-0");
  auto mm_device = bed.registry().device_of_instance("mm-1-0");
  ASSERT_TRUE(sobel_device.has_value() && mm_device.has_value());
  EXPECT_NE(*sobel_device, *mm_device);
}

TEST(Integration, DataIntegrityThroughEveryLayer) {
  // Functional boards + full registry/gateway path: the edge map computed
  // through the entire stack equals the CPU reference.
  testbed::TestbedOptions options;
  options.functional_boards = true;
  testbed::Testbed bed(options);
  auto factory = sobel_factory(96, 64);
  ASSERT_TRUE(bed.deploy_blastfunction("fn", factory).ok());
  ASSERT_TRUE(bed.gateway().invoke("fn").ok());
  // Reach into the instance's workload via a second functional run.
  workloads::SobelWorkload reference_workload(96, 64);
  const auto expected = workloads::sobel_reference(
      reference_workload.input_frame(), 96, 64);
  // Same deterministic input generation => same expected output; verify by
  // running the deployed function's math again through a raw context.
  ocl::Session session("verify");
  remote::ManagerAddress address;
  auto pod = bed.cluster().get_pod("fn-0");
  ASSERT_TRUE(pod.has_value());
  const std::string node = pod->spec.node;
  address.endpoint = &bed.manager(node).endpoint();
  address.transport = net::local_control(*[&] {
    static sim::NodeProfile profile;
    profile = bed.board(node).host();
    return &profile;
  }());
  address.node_shm = &bed.node_shm(node);
  remote::RemoteRuntime runtime({address});
  auto context = runtime.create_context(bed.board(node).id(), session);
  ASSERT_TRUE(context.ok());
  workloads::SobelWorkload workload(96, 64);
  ASSERT_TRUE(workload.setup(*context.value()).ok());
  ASSERT_TRUE(workload.handle_request(*context.value()).ok());
  EXPECT_EQ(workload.last_output(), expected);
  workload.teardown();
}

TEST(Integration, ManyTenantsOneBoardAllServed) {
  // Eight tenants time-share a single board through one manager.
  testbed::TestbedOptions options;
  registry::AllocationPolicy pack;
  pack.pack_tenants = true;
  options.policy = pack;
  testbed::Testbed bed(options);
  constexpr int kTenants = 8;
  for (int i = 0; i < kTenants; ++i) {
    ASSERT_TRUE(bed.deploy_blastfunction("fn-" + std::to_string(i),
                                         sobel_factory(160, 120))
                    .ok());
  }
  // All on one device (pack policy).
  auto device = bed.registry().device_of_instance("fn-0-0");
  ASSERT_TRUE(device.has_value());
  EXPECT_EQ(bed.registry().instances_on_device(*device).size(),
            static_cast<std::size_t>(kTenants));

  std::vector<std::thread> tenants;
  std::atomic<int> failures{0};
  for (int i = 0; i < kTenants; ++i) {
    tenants.emplace_back([&, i] {
      auto instance = bed.gateway().instance("fn-" + std::to_string(i));
      for (int r = 0; r < 5; ++r) {
        if (!instance->invoke().ok()) ++failures;
      }
      instance->shutdown();
    });
  }
  for (auto& tenant : tenants) tenant.join();
  EXPECT_EQ(failures.load(), 0);
  EXPECT_GE(bed.manager(device->substr(5)).tasks_executed(),
            static_cast<std::uint64_t>(kTenants * 5));
}

}  // namespace
}  // namespace bf
