// bf::loadgen: closed-loop, rate-capped driving (the Hey analogue) and its
// Processed-vs-Target mechanics.
#include <gtest/gtest.h>

#include "loadgen/loadgen.h"
#include "testbed/testbed.h"
#include "workloads/sobel.h"

namespace bf::loadgen {
namespace {

workloads::WorkloadFactory small_sobel() {
  return [] {
    return std::make_unique<workloads::SobelWorkload>(320, 240);
  };
}

TEST(LoadGen, MeetsTargetWhenUnderLoaded) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", small_sobel()).ok());
  DriveSpec spec;
  spec.function = "fn";
  spec.target_rps = 10;
  spec.warmup = vt::Duration::seconds(3);
  spec.duration = vt::Duration::seconds(4);
  auto result = drive(*bed.gateway().instance("fn"), spec);
  EXPECT_EQ(result.errors, 0u);
  EXPECT_NEAR(result.processed_rps, 10.0, 0.5);
  EXPECT_EQ(result.ok, 40u);
  EXPECT_EQ(result.node, bed.gateway().instances("fn").empty()
                             ? result.node
                             : result.node);
}

TEST(LoadGen, WarmupRequestsExcludedFromStats) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", small_sobel()).ok());
  DriveSpec spec;
  spec.function = "fn";
  spec.target_rps = 10;
  spec.warmup = vt::Duration::seconds(3);
  spec.duration = vt::Duration::seconds(2);
  auto result = drive(*bed.gateway().instance("fn"), spec);
  // The ~1.6 s cold start happened during warmup: no measured latency can
  // carry it.
  ASSERT_GT(result.latency_ms.count(), 0u);
  EXPECT_LT(result.latency_ms.max(), 100.0);
  EXPECT_GT(result.sent, result.ok);  // warmup requests were sent, unmeasured
}

TEST(LoadGen, SaturationCapsProcessedAtInverseLatency) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", small_sobel()).ok());
  DriveSpec spec;
  spec.function = "fn";
  spec.target_rps = 10000;  // unattainable
  spec.warmup = vt::Duration::seconds(3);
  spec.duration = vt::Duration::seconds(3);
  auto result = drive(*bed.gateway().instance("fn"), spec);
  EXPECT_LT(result.processed_rps, spec.target_rps);
  // Closed loop, one connection: cycle = latency + 1 ms gateway/handler.
  const double expected = 1000.0 / (result.latency_ms.mean() + 1.0);
  EXPECT_NEAR(result.processed_rps, expected, expected * 0.1);
}

TEST(LoadGen, DriveAllRunsEveryFunction) {
  testbed::Testbed bed;
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(
        bed.deploy_blastfunction("fn-" + std::to_string(i), small_sobel())
            .ok());
  }
  std::vector<DriveSpec> specs;
  for (int i = 1; i <= 3; ++i) {
    DriveSpec spec;
    spec.function = "fn-" + std::to_string(i);
    spec.target_rps = 5;
    spec.warmup = vt::Duration::seconds(3);
    spec.duration = vt::Duration::seconds(2);
    specs.push_back(spec);
  }
  auto results = drive_all(bed.gateway(), specs);
  ASSERT_EQ(results.size(), 3u);
  for (const auto& result : results) {
    EXPECT_EQ(result.errors, 0u) << result.function;
    EXPECT_GT(result.ok, 0u) << result.function;
  }
}

TEST(LoadGen, MissingFunctionReportsError) {
  testbed::Testbed bed;
  std::vector<DriveSpec> specs(1);
  specs[0].function = "ghost";
  specs[0].target_rps = 1;
  auto results = drive_all(bed.gateway(), specs);
  ASSERT_EQ(results.size(), 1u);
  EXPECT_GT(results[0].errors, 0u);
  EXPECT_EQ(results[0].ok, 0u);
}

TEST(LoadGen, ResultWindowsAreConsistent) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("fn", small_sobel()).ok());
  DriveSpec spec;
  spec.function = "fn";
  spec.target_rps = 5;
  spec.warmup = vt::Duration::seconds(1);
  spec.duration = vt::Duration::seconds(2);
  auto result = drive(*bed.gateway().instance("fn"), spec);
  EXPECT_EQ((result.horizon - result.measure_start).sec(), 2.0);
  EXPECT_EQ(result.target_rps, 5.0);
  EXPECT_EQ(result.function, "fn");
}

}  // namespace
}  // namespace bf::loadgen
