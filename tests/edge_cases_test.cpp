// Edge cases across the stack: gate stall-breaker, shm-unavailable
// fallback, gateway replica distribution, registry metrics filtering and
// frame bookkeeping.
#include <gtest/gtest.h>

#include <chrono>
#include <memory>
#include <thread>

#include "devmgr/device_manager.h"
#include "loadgen/loadgen.h"
#include "net/endpoint.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/bitstream.h"
#include "sim/board.h"
#include "testbed/testbed.h"
#include "workloads/sobel.h"

namespace bf {
namespace {

// --- gate stall-breaker ---------------------------------------------------------

TEST(GateStallBreaker, IdleProducerDoesNotDeadlockConsumer) {
  vt::Gate gate;
  gate.set_stall_grace(std::chrono::milliseconds(50));
  auto idle_source = gate.register_source(vt::Time::millis(1));
  // The source never announces again: wait_safe must still return within
  // roughly the grace period.
  const auto before = std::chrono::steady_clock::now();
  EXPECT_TRUE(gate.wait_safe(vt::Time::seconds(10)));
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_GE(elapsed, std::chrono::milliseconds(40));
  EXPECT_LT(elapsed, std::chrono::milliseconds(500));
}

TEST(GateStallBreaker, ActiveProducerIsNotShortCircuited) {
  vt::Gate gate;
  gate.set_stall_grace(std::chrono::milliseconds(50));
  auto source = gate.register_source(vt::Time::millis(1));
  std::thread producer([&] {
    for (int i = 2; i <= 40; ++i) {
      std::this_thread::sleep_for(std::chrono::milliseconds(5));
      source.announce(vt::Time::millis(i * 5));
    }
  });
  // The producer keeps moving: the wait returns when the bound truly
  // passes, not via the stall-breaker.
  EXPECT_TRUE(gate.wait_safe(vt::Time::millis(150)));
  EXPECT_GE(gate.min_bound(), vt::Time::millis(150));
  producer.join();
}

// --- shm fallback ----------------------------------------------------------------

TEST(ShmFallback, SessionWithoutNamespaceRunsOverGrpc) {
  sim::BoardConfig bc;
  bc.id = "fpga-b";
  bc.node = "B";
  bc.host = sim::make_node_b();
  bc.memory_bytes = 128 * kMiB;
  sim::Board board(bc);
  // Manager allows shm, but has no node namespace to create segments in.
  devmgr::DeviceManagerConfig mc;
  mc.id = "devmgr-b";
  mc.allow_shared_memory = true;
  devmgr::DeviceManager manager(mc, &board, /*node_shm=*/nullptr);

  remote::ManagerAddress address;
  address.endpoint = &manager.endpoint();
  address.transport = net::local_grpc(bc.host);
  address.node_shm = nullptr;  // client side has none either
  address.prefer_shared_memory = true;
  remote::RemoteRuntime runtime({address});

  ocl::Session session("fallback");
  auto context = runtime.create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  workloads::SobelWorkload workload(64, 48);
  ASSERT_TRUE(workload.setup(*context.value()).ok());
  ASSERT_TRUE(workload.handle_request(*context.value()).ok());
  EXPECT_EQ(workload.last_output(),
            workloads::sobel_reference(workload.input_frame(), 64, 48));
  workload.teardown();
}

// --- gateway replica distribution ---------------------------------------------------

TEST(GatewayReplicas, InvokeRoundRobinsAcrossInstances) {
  testbed::Testbed bed;
  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>(160, 120);
  };
  ASSERT_TRUE(bed.deploy_blastfunction("fn", factory, /*replicas=*/3).ok());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(bed.gateway().invoke("fn").ok());
  }
  // Round robin: every replica served exactly 2 of the 6 requests.
  for (const auto& instance : bed.gateway().instances("fn")) {
    EXPECT_EQ(instance->requests_served(), 2u)
        << instance->pod().spec.name;
  }
}

TEST(GatewayReplicas, ReplicasSpreadOverDevices) {
  testbed::Testbed bed;
  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>(160, 120);
  };
  ASSERT_TRUE(bed.deploy_blastfunction("fn", factory, /*replicas=*/3).ok());
  std::set<std::string> devices;
  for (const auto& instance : bed.gateway().instances("fn")) {
    auto device =
        bed.registry().device_of_instance(instance->pod().spec.name);
    ASSERT_TRUE(device.has_value());
    devices.insert(*device);
  }
  EXPECT_EQ(devices.size(), 3u);
}

// --- registry metrics filter ---------------------------------------------------------

TEST(RegistryMetricsFilter, OverloadedDevicesAreSkipped) {
  testbed::Testbed bed;
  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>();
  };
  // Saturate board A's function.
  ASSERT_TRUE(bed.deploy_blastfunction("hot", factory).ok());
  loadgen::DriveSpec spec;
  spec.function = "hot";
  spec.target_rps = 500;
  spec.warmup = vt::Duration::seconds(3);
  spec.duration = vt::Duration::seconds(8);
  auto hot_instance = bed.gateway().instance("hot");
  ASSERT_NE(hot_instance, nullptr);
  (void)loadgen::drive(*hot_instance, spec);

  auto hot_device = bed.registry().device_of_instance("hot-0");
  ASSERT_TRUE(hot_device.has_value());
  auto hot_sample = bed.registry().sample_device(*hot_device);
  ASSERT_TRUE(hot_sample.ok());
  ASSERT_GT(hot_sample.value().utilization, 0.5);

  // A strict utilization filter must steer the next tenant elsewhere.
  registry::DeviceQuery query;
  query.vendor = "Intel";
  query.platform = "a10gx_de5a_net";
  query.accelerator = "sobel";
  query.bitstream = sim::BitstreamLibrary::kSobel;
  registry::AllocationPolicy strict;  // default max_utilization = 0.95
  (void)strict;
  auto allocation = bed.registry().allocate("cold-0", query);
  ASSERT_TRUE(allocation.ok());
  // Default policy (0.95) may or may not exclude; but with the sample above
  // 0.5-0.95, the least-utilized-first ordering already avoids the hot
  // device.
  EXPECT_NE(allocation.value().device_id, *hot_device);
}

// --- frame bookkeeping ---------------------------------------------------------------

TEST(Frames, WireSizeIncludesOverhead) {
  net::Frame frame;
  frame.payload = Bytes(100);
  EXPECT_EQ(frame.wire_size(), 100u + net::Frame::kOverheadBytes);
}

TEST(Sessions, DistinctSegmentsPerSession) {
  // Two shm sessions on one manager use distinct segments; closing one
  // leaves the other intact.
  sim::BoardConfig bc;
  bc.id = "fpga-b";
  bc.node = "B";
  bc.host = sim::make_node_b();
  bc.memory_bytes = 128 * kMiB;
  sim::Board board(bc);
  shm::Namespace ns;
  devmgr::DeviceManagerConfig mc;
  mc.id = "devmgr-b";
  devmgr::DeviceManager manager(mc, &board, &ns);
  remote::ManagerAddress address;
  address.endpoint = &manager.endpoint();
  address.transport = net::local_control(bc.host);
  address.node_shm = &ns;
  remote::RemoteRuntime runtime({address});

  ocl::Session s1("a");
  ocl::Session s2("b");
  auto c1 = runtime.create_context("fpga-b", s1);
  auto c2 = runtime.create_context("fpga-b", s2);
  ASSERT_TRUE(c1.ok() && c2.ok());
  EXPECT_EQ(ns.segment_count(), 2u);
  c1.value().reset();
  for (int i = 0; i < 200 && ns.segment_count() != 1; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(ns.segment_count(), 1u);
}

}  // namespace
}  // namespace bf
