// Table-driven tests for the per-call event state machine (paper §III-A):
// every (state × input) cell of the transition relation, plus the
// duplicate / out-of-order ack sequences the completion stream can deliver
// under faults.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "remote/event_state.h"

namespace bf::remote {
namespace {

// Drives a fresh FSM into `state` via legal inputs.
EventFsm fsm_in(EventState state) {
  EventFsm fsm;
  switch (state) {
    case EventState::kInit:
      break;
    case EventState::kFirst:
      EXPECT_TRUE(fsm.apply(EventInput::kEnqueuedAck));
      break;
    case EventState::kBuffer:
      EXPECT_TRUE(fsm.apply(EventInput::kEnqueuedAck));
      EXPECT_TRUE(fsm.apply(EventInput::kBufferStaged));
      break;
    case EventState::kComplete:
      EXPECT_TRUE(fsm.apply(EventInput::kCompleted));
      break;
  }
  EXPECT_EQ(fsm.state(), state);
  return fsm;
}

struct TransitionCase {
  EventState from;
  EventInput input;
  bool legal;
  EventState to;  // == from when !legal (input ignored)
};

// The full 4×3 transition relation. States only move forward; every illegal
// input is ignored in place.
const TransitionCase kTransitions[] = {
    // INIT
    {EventState::kInit, EventInput::kEnqueuedAck, true, EventState::kFirst},
    {EventState::kInit, EventInput::kBufferStaged, true, EventState::kBuffer},
    {EventState::kInit, EventInput::kCompleted, true, EventState::kComplete},
    // FIRST
    {EventState::kFirst, EventInput::kEnqueuedAck, false, EventState::kFirst},
    {EventState::kFirst, EventInput::kBufferStaged, true, EventState::kBuffer},
    {EventState::kFirst, EventInput::kCompleted, true, EventState::kComplete},
    // BUFFER
    {EventState::kBuffer, EventInput::kEnqueuedAck, false, EventState::kBuffer},
    {EventState::kBuffer, EventInput::kBufferStaged, false,
     EventState::kBuffer},
    {EventState::kBuffer, EventInput::kCompleted, true, EventState::kComplete},
    // COMPLETE (terminal: everything is stale)
    {EventState::kComplete, EventInput::kEnqueuedAck, false,
     EventState::kComplete},
    {EventState::kComplete, EventInput::kBufferStaged, false,
     EventState::kComplete},
    {EventState::kComplete, EventInput::kCompleted, false,
     EventState::kComplete},
};

class EventFsmTransitionTest
    : public ::testing::TestWithParam<TransitionCase> {};

TEST_P(EventFsmTransitionTest, TransitionRelationIsExact) {
  const TransitionCase& c = GetParam();
  EventFsm fsm = fsm_in(c.from);
  EXPECT_EQ(fsm.apply(c.input), c.legal);
  EXPECT_EQ(fsm.state(), c.to);
  EXPECT_EQ(fsm.complete(), c.to == EventState::kComplete);
}

std::string transition_name(
    const ::testing::TestParamInfo<TransitionCase>& info) {
  return std::string(to_string(info.param.from)) + "_" +
         std::string(to_string(info.param.input));
}

INSTANTIATE_TEST_SUITE_P(AllCells, EventFsmTransitionTest,
                         ::testing::ValuesIn(kTransitions), transition_name);

TEST(EventFsm, StartsInInit) {
  EventFsm fsm;
  EXPECT_EQ(fsm.state(), EventState::kInit);
  EXPECT_FALSE(fsm.complete());
}

TEST(EventFsm, DuplicateEnqueuedAckIsIgnored) {
  // The pump can see the same OpEnqueued twice (duplicated notification).
  EventFsm fsm;
  EXPECT_TRUE(fsm.apply(EventInput::kEnqueuedAck));
  EXPECT_FALSE(fsm.apply(EventInput::kEnqueuedAck));
  EXPECT_EQ(fsm.state(), EventState::kFirst);
}

TEST(EventFsm, LateEnqueuedAckAfterBufferDoesNotRegress) {
  // Out-of-order delivery: data staged locally before the admission ack
  // arrives. The late ack must not move BUFFER back to FIRST.
  EventFsm fsm;
  EXPECT_TRUE(fsm.apply(EventInput::kBufferStaged));
  EXPECT_FALSE(fsm.apply(EventInput::kEnqueuedAck));
  EXPECT_EQ(fsm.state(), EventState::kBuffer);
}

TEST(EventFsm, StaleCompletionIsIgnored) {
  // Duplicate OpComplete (injected stale ack): the first completion wins and
  // the second apply reports "ignored" so callers keep the first status.
  EventFsm fsm = fsm_in(EventState::kBuffer);
  EXPECT_TRUE(fsm.apply(EventInput::kCompleted));
  EXPECT_FALSE(fsm.apply(EventInput::kCompleted));
  EXPECT_TRUE(fsm.complete());
}

TEST(EventFsm, DroppedEnqueuedAckStillCompletes) {
  // OpEnqueued is advisory; losing it must leave the event able to complete
  // via OpComplete alone (INIT --Completed--> COMPLETE is legal).
  EventFsm fsm;
  EXPECT_TRUE(fsm.apply(EventInput::kCompleted));
  EXPECT_TRUE(fsm.complete());
}

TEST(EventFsm, EveryInputSequenceTerminatesForward) {
  // Exhaustive sweep of all input strings up to length 4: the state index
  // never decreases and COMPLETE is absorbing.
  const EventInput inputs[] = {EventInput::kEnqueuedAck,
                               EventInput::kBufferStaged,
                               EventInput::kCompleted};
  std::vector<std::vector<EventInput>> sequences{{}};
  for (int len = 0; len < 4; ++len) {
    std::vector<std::vector<EventInput>> next;
    for (const auto& seq : sequences) {
      for (EventInput input : inputs) {
        auto extended = seq;
        extended.push_back(input);
        next.push_back(std::move(extended));
      }
    }
    sequences = std::move(next);
    for (const auto& seq : sequences) {
      EventFsm fsm;
      int rank = 0;  // INIT
      for (EventInput input : seq) {
        const bool was_complete = fsm.complete();
        fsm.apply(input);
        int new_rank = 0;
        switch (fsm.state()) {
          case EventState::kInit: new_rank = 0; break;
          case EventState::kFirst: new_rank = 1; break;
          case EventState::kBuffer: new_rank = 2; break;
          case EventState::kComplete: new_rank = 3; break;
        }
        EXPECT_GE(new_rank, rank) << "state regressed";
        if (was_complete) {
          EXPECT_EQ(fsm.state(), EventState::kComplete)
              << "COMPLETE is not absorbing";
        }
        rank = new_rank;
      }
    }
  }
}

}  // namespace
}  // namespace bf::remote
