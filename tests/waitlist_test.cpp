// Event wait lists (clEnqueue* event_wait_list semantics) across both
// runtimes: cross-queue ordering, timing, and error paths.
#include <gtest/gtest.h>

#include <memory>

#include "devmgr/device_manager.h"
#include "native/native_runtime.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/bitstream.h"
#include "sim/board.h"

namespace bf {
namespace {

struct Rig {
  Rig() {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.memory_bytes = 256 * kMiB;
    board = std::make_unique<sim::Board>(bc);
    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    manager = std::make_unique<devmgr::DeviceManager>(mc, board.get(),
                                                      &node_shm);
    remote::ManagerAddress address;
    address.endpoint = &manager->endpoint();
    address.transport = net::local_control(bc.host);
    address.node_shm = &node_shm;
    remote = std::make_unique<remote::RemoteRuntime>(
        std::vector<remote::ManagerAddress>{address});
    native = std::make_unique<native::NativeRuntime>(
        std::vector<sim::Board*>{board.get()});
  }

  shm::Namespace node_shm;
  std::unique_ptr<sim::Board> board;
  std::unique_ptr<devmgr::DeviceManager> manager;
  std::unique_ptr<remote::RemoteRuntime> remote;
  std::unique_ptr<native::NativeRuntime> native;
};

// Cross-queue pipeline: the kernel on q2 depends on the write on q1.
// Returns (write completion, kernel completion).
std::pair<vt::Time, vt::Time> run_dependent(ocl::Runtime& runtime,
                                            ocl::Session& session) {
  auto context = runtime.create_context("fpga-b", session);
  BF_CHECK(context.ok());
  BF_CHECK(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  constexpr std::size_t kN = 1 << 20;
  auto a = context.value()->create_buffer(kN * sizeof(float));
  auto b = context.value()->create_buffer(kN * sizeof(float));
  auto c = context.value()->create_buffer(kN * sizeof(float));
  BF_CHECK(a.ok() && b.ok() && c.ok());
  auto q1 = context.value()->create_queue();
  auto q2 = context.value()->create_queue();
  BF_CHECK(q1.ok() && q2.ok());

  std::vector<float> data(kN, 1.0F);
  auto write = q1.value()->enqueue_write(
      a.value(), 0, as_bytes(data.data(), data.size() * 4), false);
  BF_CHECK(write.ok());
  BF_CHECK(q1.value()
               ->enqueue_write(b.value(), 0,
                               as_bytes(data.data(), data.size() * 4), false)
               .ok());
  BF_CHECK(q1.value()->flush().ok());

  auto kernel = context.value()->create_kernel("vadd");
  BF_CHECK(kernel.ok());
  kernel.value().set_arg(0, a.value());
  kernel.value().set_arg(1, b.value());
  kernel.value().set_arg(2, c.value());
  kernel.value().set_arg(3, static_cast<std::int64_t>(kN));
  const ocl::EventPtr wait_list[] = {write.value()};
  auto launch = q2.value()->enqueue_kernel(kernel.value(), {kN, 1, 1},
                                           wait_list);
  BF_CHECK(launch.ok());
  BF_CHECK(q2.value()->finish().ok());
  BF_CHECK(write.value()->wait().ok());
  return {write.value()->completion_time(),
          launch.value()->completion_time()};
}

TEST(WaitList, NativeKernelStartsAfterDependency) {
  Rig rig;
  ocl::Session session("native-wl");
  auto [write_done, kernel_done] = run_dependent(*rig.native, session);
  EXPECT_GT(kernel_done, write_done);
}

TEST(WaitList, RemoteKernelStartsAfterDependency) {
  Rig rig;
  ocl::Session session("remote-wl");
  auto [write_done, kernel_done] = run_dependent(*rig.remote, session);
  EXPECT_GT(kernel_done, write_done);
}

TEST(WaitList, RemoteUnflushedDependencyFailsFast) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.remote->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context.value()->create_buffer(1024);
  ASSERT_TRUE(buffer.ok());
  auto q1 = context.value()->create_queue();
  auto q2 = context.value()->create_queue();
  ASSERT_TRUE(q1.ok() && q2.ok());
  Bytes data(1024);
  // Dependency enqueued on q1 but never flushed.
  auto dependency =
      q1.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, false);
  ASSERT_TRUE(dependency.ok());
  const ocl::EventPtr wait_list[] = {dependency.value()};
  auto dependent = q2.value()->enqueue_write(buffer.value(), 0,
                                             ByteSpan{data}, false,
                                             wait_list);
  ASSERT_TRUE(dependent.ok());
  ASSERT_TRUE(q2.value()->flush().ok());
  Status status = dependent.value()->wait();
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
  // Cleanup: flush q1 so its task drains.
  ASSERT_TRUE(q1.value()->finish().ok());
}

TEST(WaitList, ForeignEventRejectedByRemoteRuntime) {
  Rig rig;
  ocl::Session native_session("n");
  ocl::Session remote_session("r");
  auto native_context = rig.native->create_context("fpga-b", native_session);
  ASSERT_TRUE(native_context.ok());
  ASSERT_TRUE(
      native_context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto native_buffer = native_context.value()->create_buffer(64);
  ASSERT_TRUE(native_buffer.ok());
  auto native_queue = native_context.value()->create_queue();
  ASSERT_TRUE(native_queue.ok());
  Bytes data(64);
  auto native_event = native_queue.value()->enqueue_write(
      native_buffer.value(), 0, ByteSpan{data}, true);
  ASSERT_TRUE(native_event.ok());

  auto remote_context = rig.remote->create_context("fpga-b", remote_session);
  ASSERT_TRUE(remote_context.ok());
  auto remote_buffer = remote_context.value()->create_buffer(64);
  ASSERT_TRUE(remote_buffer.ok());
  auto remote_queue = remote_context.value()->create_queue();
  ASSERT_TRUE(remote_queue.ok());
  const ocl::EventPtr wait_list[] = {native_event.value()};
  auto result = remote_queue.value()->enqueue_write(
      remote_buffer.value(), 0, ByteSpan{data}, false, wait_list);
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInvalidArgument);
}

TEST(WaitList, NullEntriesIgnored) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.native->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context.value()->create_buffer(64);
  ASSERT_TRUE(buffer.ok());
  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());
  Bytes data(64);
  const ocl::EventPtr wait_list[] = {nullptr, nullptr};
  EXPECT_TRUE(queue.value()
                  ->enqueue_write(buffer.value(), 0, ByteSpan{data}, true,
                                  wait_list)
                  .ok());
}

}  // namespace
}  // namespace bf
