// bf::shm: segments (single-copy data plane) and the node namespace.
#include <gtest/gtest.h>

#include "shm/namespace.h"
#include "shm/segment.h"

namespace bf::shm {
namespace {

sim::CopyModel copy_model() { return sim::CopyModel(13.0 * 1024 * 1024 * 1024); }

TEST(Segment, StageViewFetchRoundtrip) {
  Segment segment(copy_model(), 1 << 20);
  vt::Cursor cursor;
  Bytes data(64 * 1024, 0);
  for (std::size_t i = 0; i < data.size(); ++i) {
    data[i] = static_cast<std::uint8_t>(i);
  }
  auto slot = segment.stage(ByteSpan{data}, cursor);
  ASSERT_TRUE(slot.ok());
  EXPECT_GT(cursor.now().ns(), 0);  // copy time charged

  auto view = segment.view(slot.value());
  ASSERT_TRUE(view.ok());
  EXPECT_TRUE(std::equal(data.begin(), data.end(), view.value().begin()));

  Bytes out(data.size());
  ASSERT_TRUE(segment.fetch(slot.value(), MutableByteSpan{out}, cursor).ok());
  EXPECT_EQ(out, data);
  // fetch released the slot
  EXPECT_FALSE(segment.view(slot.value()).ok());
  EXPECT_EQ(segment.used(), 0u);
}

TEST(Segment, CopyTimeProportionalToSize) {
  Segment segment(copy_model(), 64 << 20);
  vt::Cursor small_cursor;
  vt::Cursor large_cursor;
  Bytes small(1 << 10);
  Bytes large(1 << 20);
  (void)segment.stage(ByteSpan{small}, small_cursor);
  (void)segment.stage(ByteSpan{large}, large_cursor);
  EXPECT_NEAR(static_cast<double>(large_cursor.now().ns()) /
                  static_cast<double>(small_cursor.now().ns()),
              1024.0, 10.0);  // integer-ns rounding on the small copy
}

TEST(Segment, FetchSizeMismatchRejected) {
  Segment segment(copy_model(), 1 << 20);
  vt::Cursor cursor;
  Bytes data(16);
  auto slot = segment.stage(ByteSpan{data}, cursor);
  ASSERT_TRUE(slot.ok());
  Bytes wrong(8);
  EXPECT_FALSE(
      segment.fetch(slot.value(), MutableByteSpan{wrong}, cursor).ok());
  // Slot still alive after the failed fetch.
  EXPECT_TRUE(segment.view(slot.value()).ok());
}

TEST(Segment, CapacityEnforced) {
  Segment segment(copy_model(), 100);
  vt::Cursor cursor;
  Bytes data(80);
  auto first = segment.stage(ByteSpan{data}, cursor);
  ASSERT_TRUE(first.ok());
  auto second = segment.stage(ByteSpan{data}, cursor);
  EXPECT_EQ(second.status().code(), StatusCode::kResourceExhausted);
  ASSERT_TRUE(segment.release(first.value()).ok());
  EXPECT_TRUE(segment.stage(ByteSpan{data}, cursor).ok());
}

TEST(Segment, ManagerSideAllocateAndWrite) {
  Segment segment(copy_model(), 1 << 20);
  auto slot = segment.allocate(4);
  ASSERT_TRUE(slot.ok());
  auto view = segment.writable_view(slot.value());
  ASSERT_TRUE(view.ok());
  view.value()[0] = 42;
  vt::Cursor cursor;
  Bytes out(4);
  ASSERT_TRUE(segment.fetch(slot.value(), MutableByteSpan{out}, cursor).ok());
  EXPECT_EQ(out[0], 42);
}

TEST(Segment, CountsCopies) {
  Segment segment(copy_model(), 1 << 20);
  vt::Cursor cursor;
  Bytes data(100);
  auto slot = segment.stage(ByteSpan{data}, cursor);
  Bytes out(100);
  (void)segment.fetch(slot.value(), MutableByteSpan{out}, cursor);
  EXPECT_EQ(segment.copy_count(), 2u);  // one in, one out
  EXPECT_EQ(segment.total_bytes_copied(), 200u);
}

TEST(Segment, ZeroSizeSlotRejected) {
  Segment segment(copy_model(), 1 << 20);
  EXPECT_FALSE(segment.allocate(0).ok());
}

TEST(Namespace, CreateOpenUnlink) {
  Namespace ns;
  auto created = ns.create("devmgr-b:sess:1", copy_model(), 1 << 20);
  ASSERT_TRUE(created.ok());
  EXPECT_EQ(ns.segment_count(), 1u);

  auto opened = ns.open("devmgr-b:sess:1");
  ASSERT_TRUE(opened.ok());
  EXPECT_EQ(opened.value().get(), created.value().get());  // same mapping

  EXPECT_FALSE(ns.create("devmgr-b:sess:1", copy_model(), 1).ok());
  ASSERT_TRUE(ns.unlink("devmgr-b:sess:1").ok());
  EXPECT_FALSE(ns.open("devmgr-b:sess:1").ok());
  EXPECT_FALSE(ns.unlink("devmgr-b:sess:1").ok());
}

TEST(Namespace, SegmentSurvivesUnlinkWhileHeld) {
  // POSIX shm semantics: unlink removes the name, the mapping lives while
  // a handle is held.
  Namespace ns;
  auto created = ns.create("seg", copy_model(), 1 << 20);
  ASSERT_TRUE(created.ok());
  auto handle = created.value();
  ASSERT_TRUE(ns.unlink("seg").ok());
  vt::Cursor cursor;
  Bytes data(10);
  EXPECT_TRUE(handle->stage(ByteSpan{data}, cursor).ok());
}

}  // namespace
}  // namespace bf::shm
