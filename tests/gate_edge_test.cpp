// vt::Gate::wait_safe edge cases: equal-stamp tie-breaks, shutdown while a
// consumer blocks, the stall-grace fallback contract, and a seeded
// trace-equality regression for gated consumption.
#include <gtest/gtest.h>

#include <atomic>
#include <chrono>
#include <string>
#include <thread>
#include <vector>

#include "common/rng.h"
#include "devmgr/scheduler.h"
#include "vt/gate.h"

namespace bf::vt {
namespace {

TEST(GateEdge, WaitAtExactBoundProceeds) {
  // min_bound >= t must admit t == bound: a producer that announced bound B
  // promises nothing *earlier* than B, so a task stamped exactly B is safe.
  Gate gate;
  auto source = gate.register_source(Time::millis(10));
  bool fallback = true;
  EXPECT_TRUE(gate.wait_safe(Time::millis(10), &fallback));
  EXPECT_FALSE(fallback);
}

TEST(GateEdge, WaitJustPastBoundBlocks) {
  Gate gate;
  gate.set_stall_grace(std::chrono::hours(1));  // fallback must not rescue
  auto source = gate.register_source(Time::millis(10));
  std::atomic<bool> proceeded{false};
  std::thread consumer([&] {
    (void)gate.wait_safe(Time::nanos(Time::millis(10).ns() + 1));
    proceeded = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(proceeded.load());
  source.announce(Time::millis(11));
  consumer.join();
  EXPECT_TRUE(proceeded.load());
}

TEST(GateEdge, MinBoundIsTheEarliestSourceEqualStampsIncluded) {
  // Two sources with the *same* bound: the effective bound is that stamp,
  // and advancing only one of them must not open the gate.
  Gate gate;
  auto a = gate.register_source(Time::millis(5));
  auto b = gate.register_source(Time::millis(5));
  EXPECT_EQ(gate.min_bound(), Time::millis(5));
  a.announce(Time::millis(50));
  EXPECT_EQ(gate.min_bound(), Time::millis(5));
  bool fallback = false;
  EXPECT_TRUE(gate.wait_safe(Time::millis(5), &fallback));
  EXPECT_FALSE(fallback);
  b.announce(Time::millis(50));
  EXPECT_EQ(gate.min_bound(), Time::millis(50));
}

TEST(GateEdge, ShutdownWakesBlockedConsumer) {
  Gate gate;
  gate.set_stall_grace(std::chrono::hours(1));
  auto source = gate.register_source(Time::zero());
  std::atomic<bool> returned{false};
  std::atomic<bool> result{true};
  std::thread consumer([&] {
    result = gate.wait_safe(Time::millis(100));
    returned = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(returned.load());
  gate.shutdown();
  consumer.join();
  EXPECT_TRUE(returned.load());
  EXPECT_FALSE(result.load());  // shutdown => wait reports failure
}

TEST(GateEdge, WaitAfterShutdownReturnsImmediately) {
  Gate gate;
  gate.shutdown();
  bool fallback = true;
  EXPECT_FALSE(gate.wait_safe(Time::millis(1), &fallback));
  EXPECT_FALSE(fallback);  // shutdown is not a stall fallback
  EXPECT_TRUE(gate.is_shutdown());
}

TEST(GateEdge, SourceUnregistrationOpensTheGate) {
  // A departing producer (connection teardown) must release its bound, or
  // the consumer would wait forever on a ghost.
  Gate gate;
  gate.set_stall_grace(std::chrono::hours(1));
  auto held = gate.register_source(Time::millis(1));
  std::atomic<bool> proceeded{false};
  std::thread consumer([&] {
    (void)gate.wait_safe(Time::millis(100));
    proceeded = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(proceeded.load());
  held = Gate::Source();  // move-assign releases the registration
  consumer.join();
  EXPECT_TRUE(proceeded.load());
}

TEST(GateEdge, StallGraceFallbackIsReportedToCaller) {
  // An idle producer (bound pinned early, never announcing) trips the
  // stall-breaker; the consumer must learn the pop was best-effort.
  Gate gate;
  gate.set_stall_grace(std::chrono::milliseconds(10));
  auto idle = gate.register_source(Time::millis(1));
  bool fallback = false;
  EXPECT_TRUE(gate.wait_safe(Time::millis(100), &fallback));
  EXPECT_TRUE(fallback);
}

TEST(GateEdge, ActiveProducerNeverTripsFallback) {
  // A producer making steady progress resets the grace window each announce;
  // the consumer proceeds via a genuinely safe bound, not the stall-breaker.
  Gate gate;
  gate.set_stall_grace(std::chrono::milliseconds(50));
  auto source = gate.register_source(Time::zero());
  std::thread producer([&] {
    for (int t = 1; t <= 20; ++t) {
      std::this_thread::sleep_for(std::chrono::milliseconds(2));
      source.announce(Time::millis(t * 10));
    }
  });
  bool fallback = false;
  EXPECT_TRUE(gate.wait_safe(Time::millis(150), &fallback));
  EXPECT_FALSE(fallback);
  producer.join();
}

TEST(GateEdge, ShutdownWhileConsumerBlocksInSchedulerPop) {
  // The integrated shape of the shutdown edge: a worker blocked in
  // Scheduler::pop_next_safe -> Gate::wait_safe is unblocked by gate
  // shutdown and still drains the queued task, marked unordered.
  auto queue = devmgr::make_scheduler({});
  Gate gate;
  gate.set_stall_grace(std::chrono::hours(1));
  auto source = gate.register_source(Time::zero());  // holds the gate shut
  devmgr::Task task;
  task.seq = 1;
  task.client_id = "a";
  task.ready = Time::millis(10);
  ASSERT_TRUE(queue->push(task).ok());
  std::atomic<bool> done{false};
  devmgr::PopResult popped;
  std::thread consumer([&] {
    popped = queue->pop_next_safe(gate);
    done = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(done.load());
  gate.shutdown();
  consumer.join();
  ASSERT_TRUE(popped.task.has_value());
  EXPECT_EQ(popped.task->seq, 1u);
  // Shutdown drain carries no FIFO guarantee.
  EXPECT_FALSE(popped.strict_order);
  EXPECT_EQ(popped.reason, devmgr::PopReason::kShutdownDrain);
}

// Seeded trace-equality regression: a gated consumer draining a seeded
// producer schedule must produce the identical consumption trace run to run
// — equal stamps tie-broken identically, no ordering decision left to real
// scheduling.
class GateDeterminismTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(GateDeterminismTest, SeededScheduleDrainsIdentically) {
  constexpr std::uint64_t kTasks = 64;
  auto run_once = [&](std::uint64_t seed) {
    auto queue = devmgr::make_scheduler({});
    Gate gate;
    gate.set_stall_grace(std::chrono::seconds(5));
    auto source = gate.register_source(Time::zero());
    Rng rng(seed);
    std::thread producer([&] {
      // Seeded schedule of strictly increasing stamps, each carrying a batch
      // of 1-3 equal-stamp tasks (the tie-break fodder). The bound is only
      // advanced past a stamp once its whole batch is enqueued, so the
      // consumer always tie-breaks over the complete batch — emitting at the
      // announced bound itself would let the pop race the rest of the batch.
      Time stamp = Time::zero();
      std::uint64_t seq = 0;
      while (seq < kTasks) {
        stamp = stamp + Duration::millis(
                            1 + static_cast<std::int64_t>(rng.next_u64() % 5));
        const std::uint64_t batch = 1 + rng.next_u64() % 3;
        for (std::uint64_t b = 0; b < batch && seq < kTasks; ++b, ++seq) {
          devmgr::Task task;
          task.seq = seq;
          task.client_id = "client-" + std::to_string(rng.next_u64() % 3);
          task.ready = stamp;
          EXPECT_TRUE(queue->push(std::move(task)).ok());
        }
        source.announce(stamp + Duration::nanos(1));
        if (seq % 8 == 0) {
          std::this_thread::sleep_for(std::chrono::microseconds(200));
        }
      }
      source.announce(Time::infinite());
    });
    std::vector<std::string> trace;
    bool fallback_seen = false;
    for (std::uint64_t i = 0; i < kTasks; ++i) {
      devmgr::PopResult r = queue->pop_next_safe(gate);
      if (!r.task.has_value()) {
        ADD_FAILURE() << "queue drained early at task " << i;
        break;
      }
      fallback_seen = fallback_seen || !r.strict_order;
      trace.push_back(std::to_string(r.task->ready.ns()) + "/" +
                      r.task->client_id + "/" + std::to_string(r.task->seq));
    }
    producer.join();
    // With an actively announcing producer the stall-breaker must stay out
    // of the picture — otherwise the trace would be scheduling-dependent.
    EXPECT_FALSE(fallback_seen);
    return trace;
  };
  const std::uint64_t seed = GetParam();
  EXPECT_EQ(run_once(seed), run_once(seed));
}

INSTANTIATE_TEST_SUITE_P(Seeds, GateDeterminismTest,
                         ::testing::Values(std::uint64_t{3},
                                           std::uint64_t{17},
                                           std::uint64_t{20260806}));

}  // namespace
}  // namespace bf::vt
