// Accounting invariants: per-client busy attribution conserves total board
// busy time; utilization definitions agree between DeviceManager, Board and
// Testbed; metrics counters match executed work.
#include <gtest/gtest.h>

#include "loadgen/loadgen.h"
#include "testbed/testbed.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

namespace bf {
namespace {

TEST(Accounting, PerClientBusySumsToBoardBusy) {
  testbed::Testbed bed;
  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>(640, 480);
  };
  registry::AllocationPolicy pack;
  pack.pack_tenants = true;
  // Everyone on one board via a packed testbed.
  testbed::TestbedOptions options;
  options.policy = pack;
  testbed::Testbed packed(options);
  for (int i = 1; i <= 3; ++i) {
    ASSERT_TRUE(packed
                    .deploy_blastfunction("fn-" + std::to_string(i), factory)
                    .ok());
  }
  std::vector<loadgen::DriveSpec> specs;
  for (int i = 1; i <= 3; ++i) {
    loadgen::DriveSpec spec;
    spec.function = "fn-" + std::to_string(i);
    spec.target_rps = 15;
    spec.warmup = vt::Duration::seconds(3);
    spec.duration = vt::Duration::seconds(4);
    specs.push_back(spec);
  }
  (void)loadgen::drive_all(packed.gateway(), specs);

  auto device = packed.registry().device_of_instance("fn-1-0");
  ASSERT_TRUE(device.has_value());
  const std::string node = device->substr(5);
  const vt::Time from = vt::Time::zero();
  const vt::Time to = vt::Time::seconds(60);

  double client_sum_sec = 0.0;
  for (int i = 1; i <= 3; ++i) {
    client_sum_sec += packed.manager(node)
                          .client_busy_between("fn-" + std::to_string(i) +
                                                   "-0",
                                               from, to)
                          .sec();
  }
  const double board_busy_sec =
      packed.board(node).busy_between(from, to).sec();
  // Every busy interval on the board belongs to exactly one client.
  EXPECT_NEAR(client_sum_sec, board_busy_sec, 1e-9);
  EXPECT_GT(board_busy_sec, 0.1);
}

TEST(Accounting, UtilizationDefinitionsAgree) {
  testbed::Testbed bed;
  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>(640, 480);
  };
  ASSERT_TRUE(bed.deploy_blastfunction("fn", factory).ok());
  loadgen::DriveSpec spec;
  spec.function = "fn";
  spec.target_rps = 30;
  spec.warmup = vt::Duration::seconds(3);
  spec.duration = vt::Duration::seconds(4);
  auto instance = bed.gateway().instance("fn");
  ASSERT_NE(instance, nullptr);
  auto result = loadgen::drive(*instance, spec);
  ASSERT_EQ(result.errors, 0u);

  auto device = bed.registry().device_of_instance("fn-0");
  ASSERT_TRUE(device.has_value());
  const std::string node = device->substr(5);
  const vt::Time from = result.measure_start;
  const vt::Time to = result.horizon;
  const double manager_util = bed.manager(node).utilization(from, to);
  const double testbed_pct = bed.node_utilization_pct(node, from, to);
  EXPECT_NEAR(manager_util * 100.0, testbed_pct, 1e-6);
  // Sanity: ~30 rq/s x ~3.5 ms busy => 8-18%.
  EXPECT_GT(testbed_pct, 5.0);
  EXPECT_LT(testbed_pct, 25.0);
}

TEST(Accounting, OpsCounterMatchesWorkSubmitted) {
  testbed::Testbed bed;
  auto factory = [] {
    return std::make_unique<workloads::MatMulWorkload>(64);
  };
  ASSERT_TRUE(bed.deploy_blastfunction("mm", factory).ok());
  constexpr int kRequests = 10;
  auto instance = bed.gateway().instance("mm");
  for (int i = 0; i < kRequests; ++i) {
    ASSERT_TRUE(instance->invoke().ok());
  }
  auto device = bed.registry().device_of_instance("mm-0");
  ASSERT_TRUE(device.has_value());
  auto& manager = bed.manager(device->substr(5));
  // Per request: write A, write B, kernel, read C => 4 ops, 1 task.
  EXPECT_EQ(manager.tasks_executed(), static_cast<std::uint64_t>(kRequests));
  EXPECT_EQ(manager.ops_executed(),
            static_cast<std::uint64_t>(kRequests) * 4);
  EXPECT_EQ(bed.board(device->substr(5)).kernel_launch_count(),
            static_cast<std::uint64_t>(kRequests));
}

TEST(Accounting, RequestLatencyBoundsDeviceTime) {
  // A request's latency can never be below its own device busy time.
  testbed::Testbed bed;
  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>();
  };
  ASSERT_TRUE(bed.deploy_blastfunction("fn", factory).ok());
  auto instance = bed.gateway().instance("fn");
  ASSERT_TRUE(instance->invoke().ok());  // cold
  auto result = instance->invoke();
  ASSERT_TRUE(result.ok());
  auto device = bed.registry().device_of_instance("fn-0");
  ASSERT_TRUE(device.has_value());
  const double busy_per_request =
      bed.manager(device->substr(5))
          .client_busy_between("fn-0", vt::Time::zero(),
                               vt::Time::seconds(60))
          .sec() /
      2.0;  // two requests
  EXPECT_GT(result.value().latency.sec(), busy_per_request);
  // ...but not absurdly above it at idle (no queueing).
  EXPECT_LT(result.value().latency.sec(), busy_per_request + 0.010);
}

}  // namespace
}  // namespace bf
