// bf::devmgr::TaskQueue: the central FIFO with conservative gating,
// exercised directly (unit level).
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "devmgr/task_queue.h"

namespace bf::devmgr {
namespace {

Task make_task(std::uint64_t seq, const std::string& client,
               vt::Time ready) {
  Task task;
  task.seq = seq;
  task.client_id = client;
  task.ready = ready;
  Operation op;
  op.kind = Operation::Kind::kFinish;
  op.op_id = seq;
  task.ops.push_back(op);
  return task;
}

TEST(TaskQueue, PopsInReadyOrderNotPushOrder) {
  TaskQueue queue;
  vt::Gate gate;  // no sources: always safe
  ASSERT_TRUE(queue.push(make_task(1, "b", vt::Time::millis(30))).ok());
  ASSERT_TRUE(queue.push(make_task(2, "a", vt::Time::millis(10))).ok());
  ASSERT_TRUE(queue.push(make_task(3, "c", vt::Time::millis(20))).ok());
  EXPECT_EQ(queue.pop(gate)->ready, vt::Time::millis(10));
  EXPECT_EQ(queue.pop(gate)->ready, vt::Time::millis(20));
  EXPECT_EQ(queue.pop(gate)->ready, vt::Time::millis(30));
}

TEST(TaskQueue, EqualStampsBreakTiesByClientThenSeq) {
  TaskQueue queue;
  vt::Gate gate;
  ASSERT_TRUE(queue.push(make_task(5, "zeta", vt::Time::millis(10))).ok());
  ASSERT_TRUE(queue.push(make_task(9, "alpha", vt::Time::millis(10))).ok());
  ASSERT_TRUE(queue.push(make_task(7, "alpha", vt::Time::millis(10))).ok());
  auto first = queue.pop(gate);
  auto second = queue.pop(gate);
  auto third = queue.pop(gate);
  EXPECT_EQ(first->client_id, "alpha");
  EXPECT_EQ(first->seq, 7u);
  EXPECT_EQ(second->client_id, "alpha");
  EXPECT_EQ(second->seq, 9u);
  EXPECT_EQ(third->client_id, "zeta");
}

TEST(TaskQueue, PopWaitsForGateSafety) {
  TaskQueue queue;
  vt::Gate gate;
  auto source = gate.register_source(vt::Time::millis(1));
  ASSERT_TRUE(queue.push(make_task(1, "a", vt::Time::millis(100))).ok());
  std::atomic<bool> popped{false};
  std::thread consumer([&] {
    auto task = queue.pop(gate);
    EXPECT_TRUE(task.has_value());
    popped = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_FALSE(popped.load());  // source bound below the task stamp
  source.announce(vt::Time::millis(200));
  consumer.join();
  EXPECT_TRUE(popped.load());
}

TEST(TaskQueue, EarlierTaskArrivingDuringWaitIsServedFirst) {
  TaskQueue queue;
  vt::Gate gate;
  auto source = gate.register_source(vt::Time::millis(1));
  ASSERT_TRUE(queue.push(make_task(1, "late", vt::Time::millis(100))).ok());
  std::thread producer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(20));
    EXPECT_TRUE(queue.push(make_task(2, "early", vt::Time::millis(50))).ok());
    source.announce(vt::Time::millis(300));
  });
  auto first = queue.pop(gate);
  producer.join();
  ASSERT_TRUE(first.has_value());
  EXPECT_EQ(first->client_id, "early");
  EXPECT_EQ(queue.pop(gate)->client_id, "late");
}

TEST(TaskQueue, CloseDrainsWaiters) {
  TaskQueue queue;
  vt::Gate gate;
  std::thread consumer([&] { EXPECT_FALSE(queue.pop(gate).has_value()); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  queue.close();
  consumer.join();
  // Pushes after close are rejected with a deterministic status.
  Status rejected = queue.push(make_task(1, "a", vt::Time::millis(1)));
  EXPECT_EQ(rejected.code(), StatusCode::kUnavailable);
  EXPECT_EQ(queue.size(), 0u);
}

TEST(TaskQueue, PushAfterCloseAlwaysRejected) {
  TaskQueue queue;
  queue.close();
  for (int i = 0; i < 10; ++i) {
    Status status = queue.push(make_task(static_cast<std::uint64_t>(i), "a",
                                         vt::Time::millis(i)));
    EXPECT_EQ(status.code(), StatusCode::kUnavailable);
  }
  EXPECT_EQ(queue.size(), 0u);
}

TEST(TaskQueue, ConcurrentCloseAndPushNeverLosesAcceptedTasks) {
  // A push racing close() must either be accepted (and then drainable) or
  // rejected with kUnavailable — never silently dropped.
  for (int round = 0; round < 20; ++round) {
    TaskQueue queue;
    vt::Gate gate;
    gate.shutdown();  // pops drain without gating
    std::atomic<int> accepted{0};
    std::vector<std::thread> producers;
    for (int p = 0; p < 4; ++p) {
      producers.emplace_back([&, p] {
        for (int i = 0; i < 50; ++i) {
          Status status = queue.push(
              make_task(static_cast<std::uint64_t>(p * 50 + i),
                        "client-" + std::to_string(p), vt::Time::millis(i)));
          if (status.ok()) {
            accepted.fetch_add(1);
          } else {
            EXPECT_EQ(status.code(), StatusCode::kUnavailable);
          }
        }
      });
    }
    std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
    queue.close();
    for (auto& producer : producers) producer.join();
    int drained = 0;
    while (queue.pop(gate).has_value()) ++drained;
    EXPECT_EQ(drained, accepted.load());
    // After close has been observed by every producer, rejection is sticky.
    EXPECT_EQ(queue.push(make_task(999, "late", vt::Time::zero())).code(),
              StatusCode::kUnavailable);
  }
}

TEST(TaskQueue, GateShutdownStillDrainsTasks) {
  // ProgramWaiter holders must not be stranded at shutdown.
  TaskQueue queue;
  vt::Gate gate;
  ASSERT_TRUE(queue.push(make_task(1, "a", vt::Time::millis(10))).ok());
  gate.shutdown();
  auto task = queue.pop(gate);
  ASSERT_TRUE(task.has_value());
  EXPECT_EQ(task->seq, 1u);
}

TEST(ProgramWaiter, DeliversStatusAndTime) {
  ProgramWaiter waiter;
  std::thread completer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    waiter.complete(NotFound("nope"), vt::Time::millis(42));
  });
  auto [status, end] = waiter.wait();
  completer.join();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(end, vt::Time::millis(42));
}

TEST(TaskQueue, StressManyProducersOrderPreserved) {
  TaskQueue queue;
  vt::Gate gate;
  constexpr int kPerProducer = 200;
  std::vector<std::thread> producers;
  for (int p = 0; p < 4; ++p) {
    producers.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        EXPECT_TRUE(
            queue
                .push(make_task(static_cast<std::uint64_t>(p * kPerProducer + i),
                                "client-" + std::to_string(p),
                                vt::Time::millis(1 + (i * 7 + p * 3) % 1000)))
                .ok());
      }
    });
  }
  for (auto& producer : producers) producer.join();
  vt::Time last = vt::Time::zero();
  int count = 0;
  while (auto task = [&]() -> std::optional<Task> {
    if (queue.size() == 0) return std::nullopt;
    return queue.pop(gate);
  }()) {
    EXPECT_GE(task->ready, last);
    last = task->ready;
    ++count;
  }
  EXPECT_EQ(count, 4 * kPerProducer);
}

}  // namespace
}  // namespace bf::devmgr
