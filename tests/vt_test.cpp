// bf::vt: virtual time, cursors and the conservative gate.
#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "vt/cursor.h"
#include "vt/gate.h"
#include "vt/pacer.h"
#include "vt/time.h"

namespace bf::vt {
namespace {

// ---- Time / Duration -------------------------------------------------------

TEST(Time, UnitConversions) {
  EXPECT_EQ(Duration::millis(3).ns(), 3'000'000);
  EXPECT_EQ(Duration::micros(5).ns(), 5'000);
  EXPECT_EQ(Duration::seconds(2).ns(), 2'000'000'000);
  EXPECT_DOUBLE_EQ(Duration::millis(1500).sec(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::micros(1500).ms(), 1.5);
  EXPECT_EQ(Duration::from_seconds_f(0.001).ns(), 1'000'000);
}

TEST(Time, Arithmetic) {
  const Time t = Time::millis(10) + Duration::millis(5);
  EXPECT_EQ(t.ns(), 15'000'000);
  EXPECT_EQ((t - Time::millis(10)).ms(), 5.0);
  EXPECT_LT(Time::millis(1), Time::millis(2));
  EXPECT_EQ(max(Time::millis(1), Time::millis(2)), Time::millis(2));
}

TEST(Time, InfiniteIsSticky) {
  EXPECT_TRUE(Time::infinite().is_infinite());
  EXPECT_GT(Time::infinite(), Time::seconds(1'000'000));
  EXPECT_EQ(to_string(Time::infinite()), "+inf");
}

TEST(Time, ToStringFormats) {
  EXPECT_EQ(to_string(Time::millis(1)), "1.000ms");
  EXPECT_EQ(to_string(Duration::micros(1500)), "1.500ms");
}

// ---- Cursor ------------------------------------------------------------------

TEST(Cursor, AdvancesMonotonically) {
  Cursor cursor;
  EXPECT_EQ(cursor.now(), Time::zero());
  cursor.advance(Duration::millis(5));
  EXPECT_EQ(cursor.now(), Time::millis(5));
  cursor.advance_to(Time::millis(3));  // never goes backwards
  EXPECT_EQ(cursor.now(), Time::millis(5));
  cursor.advance_to(Time::millis(9));
  EXPECT_EQ(cursor.now(), Time::millis(9));
}

// ---- Gate ----------------------------------------------------------------------

TEST(Gate, EmptyGateIsAlwaysSafe) {
  Gate gate;
  EXPECT_TRUE(gate.wait_safe(Time::seconds(100)));
  EXPECT_TRUE(gate.min_bound().is_infinite());
}

TEST(Gate, MinBoundTracksSources) {
  Gate gate;
  auto a = gate.register_source(Time::millis(10));
  auto b = gate.register_source(Time::millis(20));
  EXPECT_EQ(gate.min_bound(), Time::millis(10));
  a.announce(Time::millis(30));
  EXPECT_EQ(gate.min_bound(), Time::millis(20));
  b.announce(Time::millis(50));
  EXPECT_EQ(gate.min_bound(), Time::millis(30));
  EXPECT_EQ(gate.source_count(), 2u);
}

TEST(Gate, SourceUnregistersOnDestruction) {
  Gate gate;
  {
    auto source = gate.register_source(Time::millis(1));
    EXPECT_EQ(gate.source_count(), 1u);
    EXPECT_FALSE(gate.min_bound().is_infinite());
  }
  EXPECT_EQ(gate.source_count(), 0u);
  EXPECT_TRUE(gate.min_bound().is_infinite());
}

TEST(Gate, WaitSafeBlocksUntilBoundPasses) {
  Gate gate;
  auto source = gate.register_source(Time::millis(1));
  std::atomic<bool> passed{false};
  std::thread waiter([&] {
    EXPECT_TRUE(gate.wait_safe(Time::millis(100)));
    passed = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  EXPECT_FALSE(passed.load());
  source.announce(Time::millis(100));
  waiter.join();
  EXPECT_TRUE(passed.load());
}

TEST(Gate, BlockedSourceDoesNotHoldTheGate) {
  Gate gate;
  auto source = gate.register_source(Time::millis(1));
  source.block();
  EXPECT_TRUE(gate.wait_safe(Time::seconds(10)));
}

TEST(Gate, NudgeAppliesOnlyWhileUnowned) {
  Gate gate;
  auto source = gate.register_source(Time::millis(5));
  source.nudge(Time::millis(50));  // owned: ignored
  EXPECT_EQ(gate.min_bound(), Time::millis(5));
  source.block();
  source.nudge(Time::millis(50));  // unowned: applies
  EXPECT_EQ(gate.min_bound(), Time::millis(50));
  source.announce(Time::millis(60));
  source.nudge(Time::millis(70));  // re-owned: ignored again
  EXPECT_EQ(gate.min_bound(), Time::millis(60));
}

TEST(Gate, ShutdownUnblocksWaiters) {
  Gate gate;
  auto source = gate.register_source(Time::millis(1));
  std::thread waiter([&] { EXPECT_FALSE(gate.wait_safe(Time::seconds(5))); });
  std::this_thread::sleep_for(std::chrono::milliseconds(10));
  gate.shutdown();
  waiter.join();
  EXPECT_TRUE(gate.is_shutdown());
}

TEST(Gate, MoveTransfersRegistration) {
  Gate gate;
  auto a = gate.register_source(Time::millis(3));
  Gate::Source b = std::move(a);
  EXPECT_EQ(gate.source_count(), 1u);
  b.announce(Time::millis(9));
  EXPECT_EQ(gate.min_bound(), Time::millis(9));
}

// Conservative interleaving property: with two producer threads announcing
// increasing bounds and one consumer popping "tasks" only when safe, the
// consumer must never observe a task stamped later than a still-possible
// earlier emission.
TEST(Gate, ConservativeOrderingUnderConcurrency) {
  Gate gate;
  constexpr int kPerProducer = 500;
  std::atomic<bool> violation{false};

  auto producer = [&](int stride_offset) {
    auto source = gate.register_source(Time::zero());
    for (int i = 1; i <= kPerProducer; ++i) {
      const Time bound = Time::millis(2 * i + stride_offset);
      source.announce(bound);
      std::this_thread::yield();
    }
    source.announce(Time::infinite());
    // Keep the source alive a moment so the consumer can finish its checks.
    std::this_thread::sleep_for(std::chrono::milliseconds(5));
  };

  std::thread p1(producer, 0);
  std::thread p2(producer, 1);
  std::thread consumer([&] {
    for (int t = 1; t <= kPerProducer; t += 25) {
      if (!gate.wait_safe(Time::millis(t))) return;
      if (gate.min_bound() < Time::millis(t)) violation = true;
    }
  });
  p1.join();
  p2.join();
  consumer.join();
  EXPECT_FALSE(violation.load());
}

// ---- Pacer --------------------------------------------------------------------

TEST(Pacer, DisabledPacerNeverSleeps) {
  Pacer pacer(0.0);
  const auto before = std::chrono::steady_clock::now();
  pacer.pace(Time::seconds(100));
  EXPECT_LT(std::chrono::steady_clock::now() - before,
            std::chrono::milliseconds(5));
  EXPECT_FALSE(pacer.enabled());
}

TEST(Pacer, ScaledPacerSleepsProportionally) {
  Pacer pacer(100.0);  // 100 virtual seconds per real second
  const auto before = std::chrono::steady_clock::now();
  pacer.pace(Time::millis(2000));  // => 20ms real
  const auto elapsed = std::chrono::steady_clock::now() - before;
  EXPECT_GE(elapsed, std::chrono::milliseconds(15));
  EXPECT_TRUE(pacer.enabled());
}

}  // namespace
}  // namespace bf::vt
