// Hot-path queue contracts: the lock-free SPSC ring, the blocking
// close-aware SpscQueue built on it (the data plane's two single-consumer
// queues), and BlockingQueue's closed-aware try_pop. The threaded cases are
// run under TSan/ASan by bench/run_sanitized.sh.
#include <gtest/gtest.h>

#include <atomic>
#include <optional>
#include <thread>
#include <vector>

#include "common/queue.h"
#include "common/spsc_ring.h"

namespace bf {
namespace {

// ---- SpscRing -----------------------------------------------------------------

TEST(SpscRing, FifoUntilFull) {
  SpscRing<int, 8> ring;
  for (int i = 0; i < 8; ++i) EXPECT_TRUE(ring.try_push(int{i}));
  EXPECT_FALSE(ring.try_push(99));  // full
  EXPECT_EQ(ring.size(), 8u);
  for (int i = 0; i < 8; ++i) {
    auto item = ring.try_pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_FALSE(ring.try_pop().has_value());
}

TEST(SpscRing, WrapsAroundManyTimes) {
  SpscRing<int, 4> ring;
  for (int i = 0; i < 1000; ++i) {
    ASSERT_TRUE(ring.try_push(int{i}));
    auto item = ring.try_pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(SpscRing, ConcurrentProducerConsumerPreservesOrder) {
  SpscRing<int, 16> ring;
  constexpr int kItems = 100000;
  std::thread producer([&] {
    for (int i = 0; i < kItems; ++i) {
      while (!ring.try_push(int{i})) std::this_thread::yield();
    }
  });
  int expected = 0;
  while (expected < kItems) {
    if (auto item = ring.try_pop()) {
      ASSERT_EQ(*item, expected);
      ++expected;
    }
  }
  producer.join();
}

// ---- SpscQueue ----------------------------------------------------------------

TEST(SpscQueue, FifoThroughOverflow) {
  // Push far past the ring capacity without popping: the overflow deque
  // engages and order must survive the ring-full episode and the drain.
  SpscQueue<int, 4> queue;
  constexpr int kItems = 64;
  for (int i = 0; i < kItems; ++i) EXPECT_TRUE(queue.push(int{i}));
  EXPECT_EQ(queue.size(), static_cast<std::size_t>(kItems));
  for (int i = 0; i < kItems; ++i) {
    auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
  EXPECT_TRUE(queue.empty());
}

TEST(SpscQueue, InterleavedOverflowDrainKeepsOrder) {
  SpscQueue<int, 4> queue;
  int next_push = 0;
  int next_pop = 0;
  // Alternate bursts that overflow with partial drains.
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < 7; ++i) queue.push(int{next_push++});
    for (int i = 0; i < 5; ++i) {
      auto item = queue.pop();
      ASSERT_TRUE(item.has_value());
      EXPECT_EQ(*item, next_pop++);
    }
  }
  while (next_pop < next_push) {
    auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, next_pop++);
  }
}

TEST(SpscQueue, PushBatchDeliversInOrderWithOneWake) {
  SpscQueue<int, 8> queue;
  std::vector<int> batch{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12};
  EXPECT_TRUE(queue.push_batch(batch.begin(), batch.end()));
  for (int expected : {1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}) {
    auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, expected);
  }
}

TEST(SpscQueue, CloseDrainsThenReturnsNullopt) {
  SpscQueue<int, 8> queue;
  queue.push(1);
  queue.push(2);
  queue.close();
  EXPECT_FALSE(queue.push(3));  // dropped after close
  EXPECT_EQ(queue.pop(), std::optional<int>(1));
  EXPECT_EQ(queue.pop(), std::optional<int>(2));
  EXPECT_EQ(queue.pop(), std::nullopt);
}

TEST(SpscQueue, TryPopDistinguishesEmptyFromClosedDrained) {
  SpscQueue<int, 8> queue;
  auto empty = queue.try_pop();
  EXPECT_FALSE(empty.has_item());
  EXPECT_FALSE(empty.closed);

  queue.push(7);
  auto popped = queue.try_pop();
  ASSERT_TRUE(popped.has_item());
  EXPECT_EQ(*popped.item, 7);

  queue.close();
  auto drained = queue.try_pop();
  EXPECT_FALSE(drained.has_item());
  EXPECT_TRUE(drained.closed);
}

TEST(SpscQueue, BlockedConsumerWakesOnPush) {
  SpscQueue<int, 8> queue;
  std::optional<int> received;
  std::thread consumer([&] { received = queue.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.push(42);
  consumer.join();
  EXPECT_EQ(received, std::optional<int>(42));
}

TEST(SpscQueue, BlockedConsumerWakesOnClose) {
  SpscQueue<int, 8> queue;
  std::optional<int> received = 1;
  std::thread consumer([&] { received = queue.pop(); });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
  EXPECT_EQ(received, std::nullopt);
}

// The dedicated producer/close race: one producer streaming items, a second
// thread closing mid-stream, the consumer draining until nullopt. Every item
// popped must be an uninterrupted FIFO prefix of what the producer managed
// to push before the close landed.
TEST(SpscQueue, ProducerCloseRaceDeliversFifoPrefix) {
  for (int round = 0; round < 50; ++round) {
    SpscQueue<int, 8> queue;
    std::atomic<int> pushed{0};
    std::thread producer([&] {
      for (int i = 0; i < 10000; ++i) {
        if (!queue.push(int{i})) break;  // closed under us
        pushed.store(i + 1, std::memory_order_release);
      }
    });
    std::thread closer([&] {
      std::this_thread::sleep_for(std::chrono::microseconds(50 * round));
      queue.close();
    });
    int expected = 0;
    while (auto item = queue.pop()) {
      ASSERT_EQ(*item, expected);  // FIFO, no gaps
      ++expected;
    }
    producer.join();
    closer.join();
    // Everything the producer observed as accepted was delivered.
    EXPECT_GE(expected, pushed.load(std::memory_order_acquire));
  }
}

// Two producers (the stream's real shape: dispatcher acks + worker
// completions) serialized by the internal producer lock; per-producer order
// must hold and nothing may be lost or duplicated.
TEST(SpscQueue, TwoProducersPerProducerOrderHolds) {
  SpscQueue<int, 16> queue;
  constexpr int kPerProducer = 20000;
  auto produce = [&](int base) {
    for (int i = 0; i < kPerProducer; ++i) queue.push(base + i);
  };
  std::thread a(produce, 0);
  std::thread b(produce, 1000000);
  int last_a = -1;
  int last_b = 999999;
  for (int i = 0; i < 2 * kPerProducer; ++i) {
    auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    if (*item < 1000000) {
      ASSERT_GT(*item, last_a);
      last_a = *item;
    } else {
      ASSERT_GT(*item, last_b);
      last_b = *item;
    }
  }
  a.join();
  b.join();
  EXPECT_EQ(last_a, kPerProducer - 1);
  EXPECT_EQ(last_b, 1000000 + kPerProducer - 1);
  EXPECT_TRUE(queue.empty());
}

// ---- BlockingQueue closed-aware try_pop ---------------------------------------

TEST(BlockingQueueTryPop, ReportsClosedOnlyWhenDrained) {
  BlockingQueue<int> queue;
  auto empty = queue.try_pop();
  EXPECT_FALSE(empty.has_item());
  EXPECT_FALSE(empty.closed);

  queue.push(5);
  queue.close();
  auto last = queue.try_pop();
  ASSERT_TRUE(last.has_item());
  EXPECT_EQ(*last.item, 5);
  EXPECT_FALSE(last.closed);

  auto drained = queue.try_pop();
  EXPECT_FALSE(drained.has_item());
  EXPECT_TRUE(drained.closed);
}

TEST(BlockingQueueTryPop, EmptyIsConsistentUnderConcurrentPush) {
  BlockingQueue<int> queue;
  EXPECT_TRUE(queue.empty());
  std::thread producer([&] {
    for (int i = 0; i < 1000; ++i) queue.push(i);
  });
  std::size_t non_empty_seen = 0;
  for (int i = 0; i < 1000; ++i) {
    if (!queue.empty()) ++non_empty_seen;
  }
  producer.join();
  EXPECT_FALSE(queue.empty());
  EXPECT_EQ(queue.size(), 1000u);
  (void)non_empty_seen;
}

}  // namespace
}  // namespace bf
