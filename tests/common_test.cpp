// bf::common: Status/Result, BlockingQueue, SampleStats, Rng, bytes.
#include <gtest/gtest.h>

#include <atomic>
#include <set>
#include <thread>

#include "common/bytes.h"
#include "common/queue.h"
#include "common/rng.h"
#include "common/stats.h"
#include "common/status.h"

namespace bf {
namespace {

// ---- Status -------------------------------------------------------------------

TEST(Status, DefaultIsOk) {
  Status status;
  EXPECT_TRUE(status.ok());
  EXPECT_EQ(status.code(), StatusCode::kOk);
  EXPECT_EQ(status.to_string(), "OK");
}

TEST(Status, FactoriesCarryCodeAndMessage) {
  EXPECT_EQ(NotFound("x").code(), StatusCode::kNotFound);
  EXPECT_EQ(InvalidArgument("x").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Internal("x").code(), StatusCode::kInternal);
  EXPECT_EQ(Unavailable("x").code(), StatusCode::kUnavailable);
  EXPECT_EQ(ResourceExhausted("x").code(), StatusCode::kResourceExhausted);
  EXPECT_EQ(FailedPrecondition("x").code(), StatusCode::kFailedPrecondition);
  EXPECT_EQ(AlreadyExists("x").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Aborted("boom").message(), "boom");
  EXPECT_EQ(NotFound("thing").to_string(), "NOT_FOUND: thing");
}

TEST(Status, CodeNamesAreDistinct) {
  std::set<std::string_view> names;
  for (int code = 0; code <= static_cast<int>(StatusCode::kDeadlineExceeded);
       ++code) {
    names.insert(to_string(static_cast<StatusCode>(code)));
  }
  EXPECT_EQ(names.size(),
            static_cast<std::size_t>(StatusCode::kDeadlineExceeded) + 1);
}

TEST(Result, HoldsValue) {
  Result<int> result(42);
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result.value(), 42);
  EXPECT_EQ(result.value_or(7), 42);
}

TEST(Result, HoldsError) {
  Result<int> result(NotFound("nope"));
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(result.value_or(7), 7);
  EXPECT_THROW((void)result.value(), ContractViolation);
}

TEST(Result, OkStatusWithoutValueBecomesInternalError) {
  Result<int> result(Status::Ok());
  EXPECT_FALSE(result.ok());
  EXPECT_EQ(result.status().code(), StatusCode::kInternal);
}

TEST(BfCheck, ThrowsWithLocation) {
  try {
    BF_CHECK(1 == 2);
    FAIL() << "should have thrown";
  } catch (const ContractViolation& error) {
    EXPECT_NE(std::string(error.what()).find("1 == 2"), std::string::npos);
    EXPECT_NE(std::string(error.what()).find("common_test"),
              std::string::npos);
  }
}

// ---- BlockingQueue -------------------------------------------------------------

TEST(BlockingQueue, FifoOrder) {
  BlockingQueue<int> queue;
  for (int i = 0; i < 10; ++i) queue.push(i);
  for (int i = 0; i < 10; ++i) {
    auto item = queue.pop();
    ASSERT_TRUE(item.has_value());
    EXPECT_EQ(*item, i);
  }
}

TEST(BlockingQueue, TryPopOnEmpty) {
  BlockingQueue<int> queue;
  EXPECT_FALSE(queue.try_pop().has_item());
}

TEST(BlockingQueue, CloseDrainsThenReturnsNullopt) {
  BlockingQueue<int> queue;
  queue.push(1);
  queue.close();
  EXPECT_FALSE(queue.push(2));  // rejected after close
  EXPECT_EQ(queue.pop(), 1);
  EXPECT_FALSE(queue.pop().has_value());
}

TEST(BlockingQueue, CloseWakesBlockedConsumer) {
  BlockingQueue<int> queue;
  std::atomic<bool> woke{false};
  std::thread consumer([&] {
    EXPECT_FALSE(queue.pop().has_value());
    woke = true;
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(20));
  queue.close();
  consumer.join();
  EXPECT_TRUE(woke);
}

TEST(BlockingQueue, MultiProducerMultiConsumer) {
  BlockingQueue<int> queue;
  constexpr int kPerProducer = 1000;
  constexpr int kProducers = 4;
  std::atomic<int> consumed{0};
  std::atomic<long long> sum{0};
  std::vector<std::thread> threads;
  for (int p = 0; p < kProducers; ++p) {
    threads.emplace_back([&, p] {
      for (int i = 0; i < kPerProducer; ++i) queue.push(p * kPerProducer + i);
    });
  }
  for (int c = 0; c < 3; ++c) {
    threads.emplace_back([&] {
      while (auto item = queue.pop()) {
        sum += *item;
        ++consumed;
      }
    });
  }
  for (int p = 0; p < kProducers; ++p) threads[p].join();
  queue.close();
  for (std::size_t i = kProducers; i < threads.size(); ++i) threads[i].join();
  EXPECT_EQ(consumed.load(), kProducers * kPerProducer);
  const long long n = kProducers * kPerProducer;
  EXPECT_EQ(sum.load(), n * (n - 1) / 2);
}

// ---- SampleStats ----------------------------------------------------------------

TEST(SampleStats, BasicMoments) {
  SampleStats stats;
  for (double v : {1.0, 2.0, 3.0, 4.0}) stats.record(v);
  EXPECT_EQ(stats.count(), 4u);
  EXPECT_DOUBLE_EQ(stats.mean(), 2.5);
  EXPECT_DOUBLE_EQ(stats.min(), 1.0);
  EXPECT_DOUBLE_EQ(stats.max(), 4.0);
  EXPECT_DOUBLE_EQ(stats.sum(), 10.0);
  EXPECT_NEAR(stats.stddev(), 1.1180, 1e-3);
}

TEST(SampleStats, Percentiles) {
  SampleStats stats;
  for (int i = 1; i <= 100; ++i) stats.record(i);
  EXPECT_NEAR(stats.percentile(0.0), 1.0, 1e-9);
  EXPECT_NEAR(stats.percentile(1.0), 100.0, 1e-9);
  EXPECT_NEAR(stats.percentile(0.5), 50.5, 1e-9);
  EXPECT_NEAR(stats.percentile(0.95), 95.05, 0.1);
}

TEST(SampleStats, MergeAndClear) {
  SampleStats a;
  SampleStats b;
  a.record(1.0);
  b.record(3.0);
  a.merge(b);
  EXPECT_EQ(a.count(), 2u);
  EXPECT_DOUBLE_EQ(a.mean(), 2.0);
  a.clear();
  EXPECT_TRUE(a.empty());
}

TEST(SampleStats, EmptyStatsThrowOnAccess) {
  SampleStats stats;
  EXPECT_THROW((void)stats.mean(), ContractViolation);
  EXPECT_THROW((void)stats.percentile(0.5), ContractViolation);
}

// ---- Rng ---------------------------------------------------------------------

TEST(Rng, DeterministicForSeed) {
  Rng a(7);
  Rng b(7);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1);
  Rng b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.next_u64() == b.next_u64()) ++same;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, DoubleInUnitInterval) {
  Rng rng(99);
  for (int i = 0; i < 1000; ++i) {
    const double value = rng.next_double();
    EXPECT_GE(value, 0.0);
    EXPECT_LT(value, 1.0);
  }
}

TEST(Rng, BoundedBelow) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.next_below(17), 17u);
  }
}

// ---- bytes ---------------------------------------------------------------------

TEST(Bytes, FingerprintDistinguishesContent) {
  Bytes a = {1, 2, 3};
  Bytes b = {1, 2, 4};
  EXPECT_NE(fingerprint(ByteSpan{a}), fingerprint(ByteSpan{b}));
  EXPECT_EQ(fingerprint(ByteSpan{a}), fingerprint(ByteSpan{a}));
}

TEST(Bytes, SpansWrapRawMemory) {
  std::uint32_t word = 0x01020304;
  ByteSpan span = as_bytes(&word, sizeof(word));
  EXPECT_EQ(span.size(), 4u);
  MutableByteSpan mutable_span = as_writable_bytes(&word, sizeof(word));
  mutable_span[0] = 0xFF;
  EXPECT_NE(word, 0x01020304u);
}

}  // namespace
}  // namespace bf
