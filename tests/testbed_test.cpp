// End-to-end: the full three-node testbed with Registry allocation, the
// OpenFaaS-style gateway, closed-loop load and both deployment scenarios.
#include <gtest/gtest.h>

#include "loadgen/loadgen.h"
#include "testbed/testbed.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

namespace bf {
namespace {

workloads::WorkloadFactory sobel_factory() {
  return [] { return std::make_unique<workloads::SobelWorkload>(); };
}

workloads::WorkloadFactory mm_factory() {
  return [] { return std::make_unique<workloads::MatMulWorkload>(); };
}

TEST(Testbed, RegistrySpreadsFiveFunctionsOverThreeBoards) {
  testbed::Testbed bed;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(bed.deploy_blastfunction("sobel-" + std::to_string(i),
                                         sobel_factory())
                    .ok());
  }
  EXPECT_EQ(bed.gateway().instance_count(), 5u);
  EXPECT_EQ(bed.registry().assignment_count(), 5u);
  // Every board got at least one tenant (least-loaded-first allocation).
  for (const char* node : testbed::Testbed::kNodeNames) {
    EXPECT_FALSE(
        bed.registry().instances_on_device(bed.board(node).id()).empty())
        << "node " << node;
  }
}

TEST(Testbed, RegistryPatchesPodsWithDeviceEnvAndNode) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-1", sobel_factory()).ok());
  auto pod = bed.cluster().get_pod("sobel-1-0");
  ASSERT_TRUE(pod.has_value());
  EXPECT_TRUE(pod->spec.env.contains(registry::Registry::kEnvManager));
  EXPECT_TRUE(pod->spec.env.contains(registry::Registry::kEnvDevice));
  EXPECT_TRUE(pod->spec.env.contains(registry::Registry::kEnvBitstream));
  ASSERT_FALSE(pod->spec.node.empty());
  // Forced host allocation: pod node == device node.
  const std::string device = pod->spec.env.at(registry::Registry::kEnvDevice);
  EXPECT_EQ(device, bed.board(pod->spec.node).id());
  // shm volume mounted.
  EXPECT_EQ(pod->spec.volumes.size(), 1u);
}

TEST(Testbed, BlastFunctionServesLoadAndSharesBoards) {
  testbed::Testbed bed;
  for (int i = 1; i <= 5; ++i) {
    ASSERT_TRUE(bed.deploy_blastfunction("sobel-" + std::to_string(i),
                                         sobel_factory())
                    .ok());
  }
  std::vector<loadgen::DriveSpec> specs;
  const double rates[5] = {20, 15, 10, 5, 5};  // paper Table I, low load
  for (int i = 0; i < 5; ++i) {
    loadgen::DriveSpec spec;
    spec.function = "sobel-" + std::to_string(i + 1);
    spec.target_rps = rates[i];
    spec.duration = vt::Duration::seconds(5);
    // Warmup must cover the ~1.6 s cold start (context + bitstream
    // programming) plus queue drain.
    spec.warmup = vt::Duration::seconds(3);
    specs.push_back(spec);
  }
  auto results = loadgen::drive_all(bed.gateway(), specs);
  ASSERT_EQ(results.size(), 5u);
  for (const auto& result : results) {
    EXPECT_EQ(result.errors, 0u) << result.function;
    // Low load: every function keeps up with its target.
    EXPECT_GT(result.processed_rps, result.target_rps * 0.9)
        << result.function;
    EXPECT_GT(result.latency_ms.count(), 0u);
    // Latency in a sane band (paper: ~17-32 ms).
    EXPECT_GT(result.latency_ms.mean(), 5.0) << result.function;
    EXPECT_LT(result.latency_ms.mean(), 60.0) << result.function;
  }
  // Boards actually time-shared: some positive utilization everywhere.
  const double util =
      bed.aggregate_utilization_pct(vt::Time::zero(), bed.clock());
  EXPECT_GT(util, 10.0);
  EXPECT_LE(util, 300.0);
}

TEST(Testbed, NativeBaselineServesLoad) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_native("sobel-1", sobel_factory(), "A").ok());
  ASSERT_TRUE(bed.deploy_native("sobel-2", sobel_factory(), "B").ok());
  ASSERT_TRUE(bed.deploy_native("sobel-3", sobel_factory(), "C").ok());
  std::vector<loadgen::DriveSpec> specs;
  const double rates[3] = {20, 15, 10};
  for (int i = 0; i < 3; ++i) {
    loadgen::DriveSpec spec;
    spec.function = "sobel-" + std::to_string(i + 1);
    spec.target_rps = rates[i];
    spec.duration = vt::Duration::seconds(5);
    spec.warmup = vt::Duration::seconds(3);
    specs.push_back(spec);
  }
  auto results = loadgen::drive_all(bed.gateway(), specs);
  for (const auto& result : results) {
    EXPECT_EQ(result.errors, 0u) << result.function;
    EXPECT_GT(result.processed_rps, result.target_rps * 0.9)
        << result.function;
    // Fork-per-request native path: latency above the BlastFunction band.
    EXPECT_GT(result.latency_ms.mean(), 15.0) << result.function;
    EXPECT_LT(result.latency_ms.mean(), 45.0) << result.function;
  }
  // Native pods were not registry-managed.
  EXPECT_EQ(bed.registry().assignment_count(), 0u);
}

TEST(Testbed, SaturatedFunctionProcessesOneOverLatency) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("mm-1", mm_factory()).ok());
  loadgen::DriveSpec spec;
  spec.function = "mm-1";
  spec.target_rps = 500;  // far beyond 1/latency
  spec.duration = vt::Duration::seconds(5);
  spec.warmup = vt::Duration::seconds(3);
  auto result = loadgen::drive(*bed.gateway().instance("mm-1"), spec);
  EXPECT_EQ(result.errors, 0u);
  // Closed loop with one connection: processed ~= 1 / (latency + the fixed
  // gateway+handler hop, 1 ms) — the paper's Processed-vs-Target mechanism.
  const double expected = 1000.0 / (result.latency_ms.mean() + 1.0);
  EXPECT_NEAR(result.processed_rps, expected, expected * 0.10);
  EXPECT_LT(result.processed_rps, spec.target_rps);
}

TEST(Testbed, MixedAcceleratorsGetDisjointBoards) {
  testbed::Testbed bed;
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-1", sobel_factory()).ok());
  ASSERT_TRUE(bed.deploy_blastfunction("mm-1", mm_factory()).ok());
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-2", sobel_factory()).ok());
  auto sobel1 = bed.registry().device_of_instance("sobel-1-0");
  auto mm1 = bed.registry().device_of_instance("mm-1-0");
  ASSERT_TRUE(sobel1.has_value());
  ASSERT_TRUE(mm1.has_value());
  // Different accelerators cannot share a board (time sharing is per
  // bitstream); the registry must give MM its own device.
  EXPECT_NE(*sobel1, *mm1);
}

}  // namespace
}  // namespace bf
