// bf::proto: wire format and Device Manager message round trips.
#include <gtest/gtest.h>

#include <limits>

#include "proto/messages.h"
#include "proto/wire.h"

namespace bf::proto {
namespace {

// ---- varint / zigzag ---------------------------------------------------------

TEST(Wire, VarintRoundtrip) {
  for (std::uint64_t value :
       {0ULL, 1ULL, 127ULL, 128ULL, 300ULL, 1ULL << 21, 1ULL << 35,
        0xFFFFFFFFFFFFFFFFULL}) {
    Writer writer;
    writer.varint(value);
    Reader reader(ByteSpan{writer.bytes()});
    auto decoded = reader.read_varint();
    ASSERT_TRUE(decoded.ok());
    EXPECT_EQ(decoded.value(), value);
    EXPECT_TRUE(reader.at_end());
  }
}

TEST(Wire, VarintEncodingSizes) {
  auto size_of = [](std::uint64_t value) {
    Writer writer;
    writer.varint(value);
    return writer.size();
  };
  EXPECT_EQ(size_of(0), 1u);
  EXPECT_EQ(size_of(127), 1u);
  EXPECT_EQ(size_of(128), 2u);
  EXPECT_EQ(size_of(16383), 2u);
  EXPECT_EQ(size_of(16384), 3u);
  EXPECT_EQ(size_of(0xFFFFFFFFFFFFFFFFULL), 10u);
}

TEST(Wire, ZigzagRoundtrip) {
  for (std::int64_t value :
       std::initializer_list<std::int64_t>{
           0, -1, 1, -2, 2, -1000000, 1000000,
           std::numeric_limits<std::int64_t>::min(),
           std::numeric_limits<std::int64_t>::max()}) {
    EXPECT_EQ(zigzag_decode(zigzag_encode(value)), value);
  }
  EXPECT_EQ(zigzag_encode(0), 0u);
  EXPECT_EQ(zigzag_encode(-1), 1u);
  EXPECT_EQ(zigzag_encode(1), 2u);
}

TEST(Wire, TruncatedVarintFails) {
  Bytes truncated = {0x80};  // continuation bit without payload
  Reader reader(ByteSpan{truncated});
  EXPECT_FALSE(reader.read_varint().ok());
}

TEST(Wire, OverlongVarintFails) {
  Bytes overlong(11, 0x80);
  Reader reader(ByteSpan{overlong});
  EXPECT_FALSE(reader.read_varint().ok());
}

TEST(Wire, StringAndBytesFields) {
  Writer writer;
  writer.field_string(1, "hello");
  Bytes blob = {9, 8, 7};
  writer.field_bytes(2, ByteSpan{blob});
  Reader reader(ByteSpan{writer.bytes()});

  auto h1 = reader.next_field();
  ASSERT_TRUE(h1.ok());
  EXPECT_EQ(h1.value().field, 1u);
  EXPECT_EQ(h1.value().type, WireType::kLengthDelimited);
  EXPECT_EQ(reader.read_string().value(), "hello");

  auto h2 = reader.next_field();
  ASSERT_TRUE(h2.ok());
  EXPECT_EQ(reader.read_bytes().value(), blob);
  EXPECT_TRUE(reader.at_end());
}

TEST(Wire, DoubleField) {
  Writer writer;
  writer.field_double(3, 3.14159);
  Reader reader(ByteSpan{writer.bytes()});
  auto header = reader.next_field();
  ASSERT_TRUE(header.ok());
  EXPECT_EQ(header.value().type, WireType::kFixed64);
  EXPECT_DOUBLE_EQ(reader.read_double().value(), 3.14159);
}

TEST(Wire, SkipUnknownFields) {
  Writer writer;
  writer.field_uint(7, 42);          // varint
  writer.field_double(8, 1.5);       // fixed64
  writer.field_string(9, "ignore");  // length delimited
  writer.field_uint(1, 5);           // the field we want
  Reader reader(ByteSpan{writer.bytes()});
  std::uint64_t found = 0;
  while (!reader.at_end()) {
    auto header = reader.next_field();
    ASSERT_TRUE(header.ok());
    if (header.value().field == 1) {
      found = reader.read_varint().value();
    } else {
      ASSERT_TRUE(reader.skip(header.value().type).ok());
    }
  }
  EXPECT_EQ(found, 5u);
}

TEST(Wire, FieldZeroRejected) {
  Bytes bogus = {0x00};  // tag with field number 0
  Reader reader(ByteSpan{bogus});
  EXPECT_FALSE(reader.next_field().ok());
}

// ---- message round trips --------------------------------------------------------

TEST(Messages, OpenSessionRoundtrip) {
  OpenSessionReq request;
  request.client_id = "sobel-1-0";
  request.use_shared_memory = true;
  auto decoded = reencode(request);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().client_id, "sobel-1-0");
  EXPECT_TRUE(decoded.value().use_shared_memory);
}

TEST(Messages, OpenSessionRespRoundtrip) {
  OpenSessionResp resp;
  resp.status = StatusMsg::from(Status::Ok());
  resp.session_id = 17;
  resp.shared_memory_granted = true;
  resp.device.id = "fpga-b";
  resp.device.vendor = "Intel";
  resp.device.platform = "a10gx_de5a_net";
  resp.device.node = "B";
  resp.device.accelerator = "sobel";
  resp.device.global_memory_bytes = 8ULL << 30;
  auto decoded = reencode(resp);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().session_id, 17u);
  EXPECT_TRUE(decoded.value().shared_memory_granted);
  EXPECT_EQ(decoded.value().device.id, "fpga-b");
  EXPECT_EQ(decoded.value().device.accelerator, "sobel");
  EXPECT_EQ(decoded.value().device.global_memory_bytes, 8ULL << 30);
}

TEST(Messages, StatusPropagatesError) {
  ProgramResp resp;
  resp.status = StatusMsg::from(NotFound("missing bitstream"));
  auto decoded = reencode(resp);
  ASSERT_TRUE(decoded.ok());
  const Status status = decoded.value().status.to_status();
  EXPECT_EQ(status.code(), StatusCode::kNotFound);
  EXPECT_EQ(status.message(), "missing bitstream");
}

TEST(Messages, EnqueueWriteRoundtrip) {
  EnqueueWriteReq request;
  request.op_id = 101;
  request.queue_id = 2;
  request.buffer_id = 3;
  request.offset = 4096;
  request.size = 1 << 20;
  auto decoded = reencode(request);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().op_id, 101u);
  EXPECT_EQ(decoded.value().offset, 4096u);
  EXPECT_EQ(decoded.value().size, 1u << 20);
}

TEST(Messages, WriteDataInlineAndShm) {
  WriteData inline_data;
  inline_data.op_id = 7;
  inline_data.size = 3;
  inline_data.data = {1, 2, 3};
  auto decoded = reencode(inline_data);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().data, (Bytes{1, 2, 3}));
  EXPECT_EQ(decoded.value().shm_slot, -1);

  WriteData shm_ref;
  shm_ref.op_id = 8;
  shm_ref.size = 1 << 20;
  shm_ref.shm_slot = 42;
  auto decoded_shm = reencode(shm_ref);
  ASSERT_TRUE(decoded_shm.ok());
  EXPECT_EQ(decoded_shm.value().shm_slot, 42);
  EXPECT_TRUE(decoded_shm.value().data.empty());
}

TEST(Messages, EnqueueKernelWithMixedArgs) {
  EnqueueKernelReq request;
  request.op_id = 5;
  request.queue_id = 1;
  request.kernel_id = 9;
  request.global_size = {1920, 1080, 1};
  KernelArgMsg buffer_arg;
  buffer_arg.kind = KernelArgMsg::Kind::kBuffer;
  buffer_arg.buffer_id = 33;
  KernelArgMsg int_arg;
  int_arg.kind = KernelArgMsg::Kind::kInt;
  int_arg.int_value = -1920;
  KernelArgMsg double_arg;
  double_arg.kind = KernelArgMsg::Kind::kDouble;
  double_arg.double_value = 0.5;
  request.args = {buffer_arg, int_arg, double_arg};

  auto decoded = reencode(request);
  ASSERT_TRUE(decoded.ok());
  ASSERT_EQ(decoded.value().args.size(), 3u);
  EXPECT_EQ(decoded.value().args[0].kind, KernelArgMsg::Kind::kBuffer);
  EXPECT_EQ(decoded.value().args[0].buffer_id, 33u);
  EXPECT_EQ(decoded.value().args[1].int_value, -1920);
  EXPECT_DOUBLE_EQ(decoded.value().args[2].double_value, 0.5);
  EXPECT_EQ(decoded.value().global_size[0], 1920u);
  EXPECT_EQ(decoded.value().global_size[2], 1u);
}

TEST(Messages, OpCompleteWithReadData) {
  OpComplete completion;
  completion.op_id = 77;
  completion.status = StatusMsg::from(Status::Ok());
  completion.data = Bytes(100, 0xEE);
  completion.size = 100;
  auto decoded = reencode(completion);
  ASSERT_TRUE(decoded.ok());
  EXPECT_EQ(decoded.value().data.size(), 100u);
  EXPECT_EQ(decoded.value().size, 100u);
  EXPECT_TRUE(decoded.value().status.to_status().ok());
}

TEST(Messages, FlushAndFinishRoundtrip) {
  FlushReq flush;
  flush.queue_id = 6;
  EXPECT_EQ(reencode(flush).value().queue_id, 6u);
  FinishReq finish;
  finish.op_id = 11;
  finish.queue_id = 6;
  auto decoded = reencode(finish);
  EXPECT_EQ(decoded.value().op_id, 11u);
  EXPECT_EQ(decoded.value().queue_id, 6u);
}

TEST(Messages, MethodNamesAndClassification) {
  EXPECT_EQ(to_string(Method::kOpenSession), "OpenSession");
  EXPECT_EQ(to_string(Method::kEnqueueKernel), "EnqueueKernel");
  EXPECT_TRUE(is_command_queue_method(Method::kFlush));
  EXPECT_TRUE(is_command_queue_method(Method::kWriteData));
  EXPECT_FALSE(is_command_queue_method(Method::kProgram));
  EXPECT_FALSE(is_command_queue_method(Method::kOpComplete));
}

TEST(Messages, DecodeGarbageFailsGracefully) {
  Bytes garbage = {0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF, 0xFF,
                   0xFF, 0xFF, 0x01};
  Reader reader(ByteSpan{garbage});
  auto decoded = OpenSessionResp::decode(reader);
  EXPECT_FALSE(decoded.ok());
}

// Parameterized fuzz-lite: truncating a valid encoding at every byte
// boundary must never crash and must not return phantom success for
// length-delimited cuts.
class TruncationTest : public ::testing::TestWithParam<std::size_t> {};

TEST_P(TruncationTest, TruncatedEnqueueKernelNeverCrashes) {
  EnqueueKernelReq request;
  request.op_id = 5;
  request.kernel_id = 9;
  KernelArgMsg arg;
  arg.kind = KernelArgMsg::Kind::kBuffer;
  arg.buffer_id = 123456789;
  request.args = {arg};
  Writer writer;
  request.encode(writer);
  const Bytes full = writer.take();
  const std::size_t cut = GetParam();
  if (cut >= full.size()) GTEST_SKIP();
  Bytes truncated(full.begin(), full.begin() + cut);
  Reader reader(ByteSpan{truncated});
  auto decoded = EnqueueKernelReq::decode(reader);  // may fail, must not crash
  (void)decoded;
}

INSTANTIATE_TEST_SUITE_P(AllByteBoundaries, TruncationTest,
                         ::testing::Range<std::size_t>(0, 24));

}  // namespace
}  // namespace bf::proto
