// Fault injection and robustness: connection loss, manager shutdown with
// live tenants, double shutdowns, and the determinism guarantee of the
// virtual-time engine.
#include <gtest/gtest.h>

#include <memory>
#include <thread>

#include "devmgr/device_manager.h"
#include "fault/injector.h"
#include "loadgen/loadgen.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/bitstream.h"
#include "sim/board.h"
#include "testbed/testbed.h"
#include "workloads/sobel.h"

namespace bf {
namespace {

struct Rig {
  Rig() {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.memory_bytes = 128 * kMiB;
    board = std::make_unique<sim::Board>(bc);
    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    manager = std::make_unique<devmgr::DeviceManager>(mc, board.get(),
                                                      &node_shm);
    remote::ManagerAddress address;
    address.endpoint = &manager->endpoint();
    address.transport = net::local_control(bc.host);
    address.node_shm = &node_shm;
    runtime = std::make_unique<remote::RemoteRuntime>(
        std::vector<remote::ManagerAddress>{address});
  }

  shm::Namespace node_shm;
  std::unique_ptr<sim::Board> board;
  std::unique_ptr<devmgr::DeviceManager> manager;
  std::unique_ptr<remote::RemoteRuntime> runtime;
};

TEST(FaultInjection, ManagerShutdownFailsPendingOps) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.runtime->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context.value()->create_buffer(1024);
  ASSERT_TRUE(buffer.ok());
  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());
  Bytes data(1024);
  // Enqueue without flushing, then kill the manager: the wait must fail
  // promptly, not hang.
  auto event =
      queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, false);
  ASSERT_TRUE(event.ok());
  rig.manager->shutdown();
  Status status = event.value()->wait();
  EXPECT_FALSE(status.ok());
}

TEST(FaultInjection, CallsAfterManagerShutdownReturnUnavailable) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.runtime->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  rig.manager->shutdown();
  auto buffer = context.value()->create_buffer(64);
  EXPECT_FALSE(buffer.ok());
  EXPECT_EQ(buffer.status().code(), StatusCode::kUnavailable);
}

TEST(FaultInjection, ConnectAfterShutdownFails) {
  Rig rig;
  rig.manager->shutdown();
  ocl::Session session("late");
  auto context = rig.runtime->create_context("fpga-b", session);
  EXPECT_FALSE(context.ok());
}

TEST(FaultInjection, ContextDestructionWithOutstandingOpsIsClean) {
  Rig rig;
  ocl::Session session("t");
  {
    auto context = rig.runtime->create_context("fpga-b", session);
    ASSERT_TRUE(context.ok());
    ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
    auto buffer = context.value()->create_buffer(1024);
    ASSERT_TRUE(buffer.ok());
    auto queue = context.value()->create_queue();
    ASSERT_TRUE(queue.ok());
    Bytes data(1024);
    // Leave unflushed ops behind; the context teardown must not hang or
    // leak (the queue outlives the scope exit inside the context).
    (void)queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data},
                                       false);
  }
  // The manager cleaned the session up.
  for (int i = 0; i < 200 && rig.manager->session_count() != 0; ++i) {
    std::this_thread::sleep_for(std::chrono::milliseconds(2));
  }
  EXPECT_EQ(rig.manager->session_count(), 0u);
  EXPECT_EQ(rig.node_shm.segment_count(), 0u);
}

TEST(FaultInjection, TeardownFailsFirstStateEventsWithStatus) {
  // Ops stuck in FIRST (admitted, never completed because the manager died)
  // must be failed with a terminal status by the connection-thread teardown
  // — a waiter polling the event may never hang, and the event object stays
  // valid even though the context that created it is being destroyed.
  Rig rig;
  ocl::Session session("t");
  auto context = rig.runtime->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context.value()->create_buffer(1024);
  ASSERT_TRUE(buffer.ok());
  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());
  Bytes data(1024);
  auto event =
      queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, false);
  ASSERT_TRUE(event.ok());
  // Keep the event alive past the context so a stale completion would have a
  // corpse to corrupt.
  ocl::EventPtr survivor = event.value();
  rig.manager->shutdown();
  Status status = survivor->wait();
  EXPECT_FALSE(status.ok());
  context.value().reset();  // connection-thread teardown with a live event
  EXPECT_EQ(survivor->status(), ocl::EventStatus::kError);
  EXPECT_FALSE(survivor->wait().ok());  // status sticks after teardown
}

TEST(FaultInjection, InjectedConnectionLossFailsPendingAndRecovers) {
  // The net.send.conn_loss site severs the control connection mid-stream:
  // pending events must fail with a terminal status, and a *new* session
  // must work (the fault is per-connection, not a poisoned manager).
  Rig rig;
  {
    fault::ScopedInjection inject(42);
    ocl::Session session("t");
    auto context = rig.runtime->create_context("fpga-b", session);
    ASSERT_TRUE(context.ok());
    ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
    auto buffer = context.value()->create_buffer(1024);
    ASSERT_TRUE(buffer.ok());
    auto queue = context.value()->create_queue();
    ASSERT_TRUE(queue.ok());
    // Arm after setup so the loss hits the enqueue path.
    inject.site(fault::site::kNetSendConnLoss, {.probability = 1.0});
    Bytes data(1024);
    auto event =
        queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, false);
    if (event.ok()) {
      EXPECT_FALSE(event.value()->wait().ok());
    } else {
      EXPECT_EQ(event.status().code(), StatusCode::kUnavailable);
    }
    // Every later call on the severed connection fails fast, never hangs.
    EXPECT_FALSE(context.value()->create_buffer(64).ok());
  }
  ocl::Session fresh("t2");
  auto context = rig.runtime->create_context("fpga-b", fresh);
  ASSERT_TRUE(context.ok());
  EXPECT_TRUE(context.value()->create_buffer(64).ok());
}

TEST(FaultInjection, ShmGrantDenialFallsBackToGrpcDataPath) {
  // Paper §III-C: shared memory is an optimization; denial must degrade to
  // the gRPC data path, not fail the session. The workload still runs and
  // no segment is ever created.
  Rig rig;
  fault::ScopedInjection inject(7);
  inject.site(fault::site::kShmGrantDeny, {.probability = 1.0});
  ocl::Session session("t");
  auto context = rig.runtime->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  EXPECT_EQ(rig.node_shm.segment_count(), 0u);
  workloads::SobelWorkload sobel(64, 48);
  ASSERT_TRUE(sobel.setup(*context.value()).ok());
  ASSERT_TRUE(sobel.handle_request(*context.value()).ok());
  EXPECT_EQ(sobel.last_output(),
            workloads::sobel_reference(sobel.input_frame(), 64, 48));
  sobel.teardown();
}

TEST(FaultInjection, DoubleShutdownIsIdempotent) {
  Rig rig;
  rig.manager->shutdown();
  rig.manager->shutdown();  // must not crash or deadlock
  SUCCEED();
}

TEST(FaultInjection, TenantErrorsDoNotPoisonOthers) {
  Rig rig;
  ocl::Session good_session("good");
  ocl::Session bad_session("bad");
  auto good = rig.runtime->create_context("fpga-b", good_session);
  auto bad = rig.runtime->create_context("fpga-b", bad_session);
  ASSERT_TRUE(good.ok() && bad.ok());
  ASSERT_TRUE(good.value()->program(sim::BitstreamLibrary::kVadd).ok());
  ASSERT_TRUE(bad.value()->program(sim::BitstreamLibrary::kVadd).ok());

  // The bad tenant spams invalid ops.
  auto bad_queue = bad.value()->create_queue();
  ASSERT_TRUE(bad_queue.ok());
  Bytes junk(64);
  for (int i = 0; i < 5; ++i) {
    auto event = bad_queue.value()->enqueue_write(ocl::Buffer{12345, 64}, 0,
                                                  ByteSpan{junk}, false);
    ASSERT_TRUE(event.ok());
    ASSERT_TRUE(bad_queue.value()->flush().ok());
    EXPECT_FALSE(event.value()->wait().ok());
  }

  // The good tenant is unaffected.
  auto buffer = good.value()->create_buffer(1024);
  ASSERT_TRUE(buffer.ok());
  auto queue = good.value()->create_queue();
  ASSERT_TRUE(queue.ok());
  Bytes data(1024, 0x2A);
  EXPECT_TRUE(
      queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data}, true)
          .ok());
}

// The virtual-time engine's headline guarantee: identical scenarios produce
// identical modeled results, run-to-run, despite real thread scheduling.
class DeterminismTest : public ::testing::TestWithParam<int> {};

TEST_P(DeterminismTest, LoadScenarioIsReproducible) {
  auto run_once = [&]() {
    testbed::Testbed bed;
    auto factory = [] {
      return std::make_unique<workloads::SobelWorkload>(640, 480);
    };
    for (int i = 1; i <= 4; ++i) {
      BF_CHECK(bed.deploy_blastfunction("fn-" + std::to_string(i), factory)
                   .ok());
    }
    std::vector<loadgen::DriveSpec> specs;
    const double rates[4] = {30, 20, 15, 10};
    for (int i = 0; i < 4; ++i) {
      loadgen::DriveSpec spec;
      spec.function = "fn-" + std::to_string(i + 1);
      spec.target_rps = rates[i];
      spec.warmup = vt::Duration::seconds(2);
      spec.duration = vt::Duration::seconds(3);
      specs.push_back(spec);
    }
    auto results = loadgen::drive_all(bed.gateway(), specs);
    std::vector<std::pair<double, std::uint64_t>> digest;
    for (const auto& r : results) {
      digest.emplace_back(r.latency_ms.empty() ? 0.0 : r.latency_ms.mean(),
                          r.ok);
    }
    return digest;
  };
  EXPECT_EQ(run_once(), run_once());
}

INSTANTIATE_TEST_SUITE_P(Repetitions, DeterminismTest, ::testing::Range(0, 3));

}  // namespace
}  // namespace bf
