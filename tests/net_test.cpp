// bf::net: transport cost models and the virtual-time RPC fabric.
#include <gtest/gtest.h>

#include <thread>

#include "net/endpoint.h"
#include "net/transport.h"

namespace bf::net {
namespace {

// ---- cost models -----------------------------------------------------------

TEST(TransportCost, LocalGrpcChargesCopiesOnDelivery) {
  const auto node = sim::make_node_b();
  TransportCost grpc = local_grpc(node);
  TransportCost control = local_control(node);
  const std::size_t big = 8 << 20;
  // Same serialization on send...
  EXPECT_EQ(grpc.send_cost(big).ns(), control.send_cost(big).ns());
  // ...but the gRPC data path pays 3 extra copies on delivery.
  EXPECT_GT(grpc.deliver_cost(big).ns(), control.deliver_cost(big).ns());
  // Small control frames cost about the fixed hop latency either way.
  EXPECT_NEAR(static_cast<double>(grpc.deliver_cost(200).ns()),
              static_cast<double>(control.deliver_cost(200).ns()), 1e5);
}

TEST(TransportCost, RemoteGrpcIsSlowerThanLocal) {
  const auto b = sim::make_node_b();
  const auto c = sim::make_node_c();
  const std::size_t size = 1 << 20;
  EXPECT_GT(remote_grpc(b, c).deliver_cost(size).ns(),
            local_grpc(b).deliver_cost(size).ns());
}

TEST(TransportCost, DeliverMonotoneInSize) {
  TransportCost cost = local_grpc(sim::make_node_b());
  vt::Duration previous = vt::Duration::nanos(0);
  for (std::size_t size = 64; size <= (1 << 24); size *= 8) {
    const vt::Duration current = cost.deliver_cost(size);
    EXPECT_GT(current.ns(), previous.ns());
    previous = current;
  }
}

// ---- endpoint / connection ----------------------------------------------------

struct EchoServer {
  explicit EchoServer(const std::string& name) : endpoint(name) {
    endpoint.set_handler([this](std::shared_ptr<Connection> connection) {
      threads.emplace_back([connection] {
        while (auto frame = connection->next_request()) {
          if (frame->kind != Frame::Kind::kRequest) continue;
          // Echo the payload back, 50us of server handling.
          connection->reply(*frame, frame->payload,
                            frame->arrival_time + vt::Duration::micros(50));
        }
      });
    });
  }
  ~EchoServer() {
    endpoint.shutdown();
    for (auto& thread : threads) thread.join();
  }
  ServerEndpoint endpoint;
  std::vector<std::thread> threads;
};

TEST(Connection, UnaryCallRoundtrip) {
  EchoServer server("echo");
  vt::Cursor cursor;
  auto connection = server.endpoint.connect(
      "client", local_control(sim::make_node_b()), cursor);
  ASSERT_TRUE(connection.ok());
  Bytes payload = {1, 2, 3};
  auto reply = connection.value()->call(proto::Method::kGetDeviceInfo,
                                        payload, cursor);
  ASSERT_TRUE(reply.ok());
  EXPECT_EQ(reply.value().payload, payload);
  // The cursor advanced past a full round trip (~2 hops + handling).
  EXPECT_GT(cursor.now().ns(), vt::Duration::micros(800).ns());
  EXPECT_LT(cursor.now().ms(), 10.0);
}

TEST(Connection, CallsAdvanceMonotonically) {
  EchoServer server("echo");
  vt::Cursor cursor;
  auto connection = server.endpoint.connect(
      "client", local_control(sim::make_node_b()), cursor);
  ASSERT_TRUE(connection.ok());
  vt::Time previous = cursor.now();
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(
        connection.value()->call(proto::Method::kGetDeviceInfo, {}, cursor)
            .ok());
    EXPECT_GT(cursor.now(), previous);
    previous = cursor.now();
  }
}

TEST(Connection, ConnectWithoutHandlerFails) {
  ServerEndpoint endpoint("empty");
  vt::Cursor cursor;
  auto connection = endpoint.connect("client",
                                     local_control(sim::make_node_b()),
                                     cursor);
  EXPECT_EQ(connection.status().code(), StatusCode::kFailedPrecondition);
}

TEST(Connection, ShutdownFailsInFlightCalls) {
  ServerEndpoint endpoint("silent");
  endpoint.set_handler([](std::shared_ptr<Connection>) {});  // never serves
  vt::Cursor cursor;
  auto connection = endpoint.connect("client",
                                     local_control(sim::make_node_b()),
                                     cursor);
  ASSERT_TRUE(connection.ok());
  std::thread closer([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(30));
    endpoint.shutdown();
  });
  auto reply = connection.value()->call(proto::Method::kGetDeviceInfo, {},
                                        cursor);
  closer.join();
  EXPECT_FALSE(reply.ok());
  EXPECT_EQ(reply.status().code(), StatusCode::kUnavailable);
}

TEST(Connection, CallAfterCloseFails) {
  EchoServer server("echo");
  vt::Cursor cursor;
  auto connection = server.endpoint.connect(
      "client", local_control(sim::make_node_b()), cursor);
  ASSERT_TRUE(connection.ok());
  connection.value()->close();
  EXPECT_FALSE(
      connection.value()->call(proto::Method::kGetDeviceInfo, {}, cursor)
          .ok());
  EXPECT_FALSE(connection.value()
                   ->send(proto::Method::kFlush, 1, {}, cursor)
                   .ok());
}

TEST(Connection, NotificationsArriveOnStream) {
  ServerEndpoint endpoint("notifier");
  std::vector<std::thread> threads;
  endpoint.set_handler([&](std::shared_ptr<Connection> connection) {
    threads.emplace_back([connection] {
      while (auto frame = connection->next_request()) {
        // Push two notifications per request.
        connection->notify(proto::Method::kOpEnqueued, frame->correlation,
                           {}, frame->arrival_time);
        connection->notify(proto::Method::kOpComplete, frame->correlation,
                           {}, frame->arrival_time + vt::Duration::millis(1));
      }
    });
  });
  vt::Cursor cursor;
  auto connection = endpoint.connect("client",
                                     local_control(sim::make_node_b()),
                                     cursor);
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE(connection.value()
                  ->send(proto::Method::kEnqueueKernel, 7, {}, cursor)
                  .ok());
  auto first = connection.value()->notifications().pop();
  auto second = connection.value()->notifications().pop();
  ASSERT_TRUE(first.has_value());
  ASSERT_TRUE(second.has_value());
  EXPECT_EQ(first->method, proto::Method::kOpEnqueued);
  EXPECT_EQ(second->method, proto::Method::kOpComplete);
  EXPECT_EQ(first->correlation, 7u);
  EXPECT_LT(first->arrival_time, second->arrival_time);
  endpoint.shutdown();
  for (auto& thread : threads) thread.join();
}

TEST(Connection, InFlightFramesHoldTheGateBound) {
  ServerEndpoint endpoint("gated");
  endpoint.set_handler([](std::shared_ptr<Connection>) {
    // No dispatcher: frames stay in the inbox.
  });
  vt::Cursor cursor;
  cursor.advance(vt::Duration::millis(10));
  auto connection = endpoint.connect("client",
                                     local_control(sim::make_node_b()),
                                     cursor);
  ASSERT_TRUE(connection.ok());
  ASSERT_TRUE(connection.value()
                  ->send(proto::Method::kFlush, 1, {}, cursor)
                  .ok());
  // The client then races far ahead...
  cursor.advance(vt::Duration::seconds(10));
  connection.value()->announce(cursor.now());
  // ...but the unprocessed frame keeps the gate's bound at its arrival.
  EXPECT_LT(endpoint.gate().min_bound(), vt::Time::millis(100));
}

TEST(Connection, ArrivalsAreInOrderPerConnection) {
  // A big frame followed by a tiny frame: FIFO (TCP) delivery means the tiny
  // frame cannot arrive earlier.
  ServerEndpoint endpoint("fifo");
  std::vector<vt::Time> arrivals;
  std::mutex arrivals_mutex;
  std::vector<std::thread> threads;
  endpoint.set_handler([&](std::shared_ptr<Connection> connection) {
    threads.emplace_back([&, connection] {
      while (auto frame = connection->next_request()) {
        std::lock_guard lock(arrivals_mutex);
        arrivals.push_back(frame->arrival_time);
      }
    });
  });
  vt::Cursor cursor;
  auto connection = endpoint.connect("client",
                                     local_grpc(sim::make_node_b()), cursor);
  ASSERT_TRUE(connection.ok());
  Bytes big(32 << 20);
  ASSERT_TRUE(connection.value()
                  ->send(proto::Method::kWriteData, 1, std::move(big), cursor)
                  .ok());
  ASSERT_TRUE(connection.value()
                  ->send(proto::Method::kFlush, 2, {}, cursor)
                  .ok());
  connection.value()->close();
  endpoint.shutdown();
  for (auto& thread : threads) thread.join();
  ASSERT_EQ(arrivals.size(), 2u);
  EXPECT_GE(arrivals[1], arrivals[0]);
}

TEST(ServerEndpoint, CountsLiveConnections) {
  EchoServer server("echo");
  vt::Cursor cursor;
  auto a = server.endpoint.connect("a", local_control(sim::make_node_b()),
                                   cursor);
  auto b = server.endpoint.connect("b", local_control(sim::make_node_b()),
                                   cursor);
  ASSERT_TRUE(a.ok() && b.ok());
  EXPECT_EQ(server.endpoint.connection_count(), 2u);
  a.value()->close();
  EXPECT_EQ(server.endpoint.connection_count(), 1u);
}

}  // namespace
}  // namespace bf::net
