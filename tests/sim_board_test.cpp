// bf::sim::Board: exclusive timeline, busy accounting, reconfiguration and
// the bitstream library.
#include <gtest/gtest.h>

#include "sim/bitstream.h"
#include "sim/board.h"

namespace bf::sim {
namespace {

BoardConfig small_board(bool functional = true) {
  BoardConfig config;
  config.id = "fpga-t";
  config.node = "B";
  config.host = make_node_b();
  config.memory_bytes = 64 * kMiB;
  config.functional = functional;
  return config;
}

const Bitstream& vadd_bitstream() {
  return *BitstreamLibrary::standard().find(BitstreamLibrary::kVadd);
}

// ---- BitstreamLibrary -------------------------------------------------------

TEST(BitstreamLibrary, ContainsThePaperAccelerators) {
  const auto& library = BitstreamLibrary::standard();
  ASSERT_NE(library.find(BitstreamLibrary::kSobel), nullptr);
  ASSERT_NE(library.find(BitstreamLibrary::kMatMul), nullptr);
  ASSERT_NE(library.find(BitstreamLibrary::kAlexNet), nullptr);
  EXPECT_EQ(library.find("bogus"), nullptr);
  EXPECT_FALSE(library.get("bogus").has_value());

  const Bitstream* alexnet = library.find(BitstreamLibrary::kAlexNet);
  EXPECT_EQ(alexnet->accelerator, "pipecnn_alexnet");
  EXPECT_TRUE(alexnet->has_kernel("conv"));
  EXPECT_TRUE(alexnet->has_kernel("pool"));
  EXPECT_FALSE(alexnet->has_kernel("sobel"));
}

TEST(BitstreamLibrary, ReconfigurationTimeGrowsWithSize) {
  const auto& library = BitstreamLibrary::standard();
  const auto small = library.find(BitstreamLibrary::kVadd);
  const auto large = library.find(BitstreamLibrary::kAlexNet);
  EXPECT_LT(small->reconfiguration_time().ns(),
            large->reconfiguration_time().ns());
  // Order of seconds, like a real full-device Arria-10 program.
  EXPECT_GT(small->reconfiguration_time().sec(), 0.5);
  EXPECT_LT(large->reconfiguration_time().sec(), 5.0);
}

// ---- Board ---------------------------------------------------------------------

TEST(Board, StartsUnconfigured) {
  Board board(small_board());
  EXPECT_FALSE(board.bitstream().has_value());
  EXPECT_FALSE(board.has_kernel("vadd"));
  KernelLaunch launch;
  launch.kernel = "vadd";
  EXPECT_EQ(board.run_kernel(launch, vt::Time::zero()).status().code(),
            StatusCode::kFailedPrecondition);
}

TEST(Board, ConfigureLoadsKernelsAndWipesMemory) {
  Board board(small_board());
  auto handle = board.allocate(1024);
  ASSERT_TRUE(handle.ok());
  auto interval = board.configure(vadd_bitstream(), vt::Time::zero());
  ASSERT_TRUE(interval.ok());
  EXPECT_TRUE(board.has_kernel("vadd"));
  EXPECT_EQ(board.memory_used(), 0u);  // DDR wiped
  Bytes out(4);
  EXPECT_FALSE(board.read(handle.value(), 0, MutableByteSpan{out},
                          vt::Time::zero())
                   .ok());
  EXPECT_EQ(board.reconfiguration_count(), 1u);
}

TEST(Board, TimelineSerializesOverlappingWork) {
  Board board(small_board());
  ASSERT_TRUE(board.configure(vadd_bitstream(), vt::Time::zero()).ok());
  auto buffer = board.allocate(8 * kMiB);
  ASSERT_TRUE(buffer.ok());
  Bytes data(8 * kMiB, 1);
  // Two writes both "ready" at the same instant: the second must start when
  // the first ends.
  const vt::Time ready = board.busy_until();
  auto first = board.write(buffer.value(), 0, ByteSpan{data}, ready);
  auto second = board.write(buffer.value(), 0, ByteSpan{data}, ready);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(second.value().start, first.value().end);
  EXPECT_GT(second.value().end, second.value().start);
}

TEST(Board, ReadyAfterBusyStartsAtReady) {
  Board board(small_board());
  ASSERT_TRUE(board.configure(vadd_bitstream(), vt::Time::zero()).ok());
  auto buffer = board.allocate(1024);
  ASSERT_TRUE(buffer.ok());
  Bytes data(1024);
  const vt::Time late = board.busy_until() + vt::Duration::seconds(5);
  auto interval = board.write(buffer.value(), 0, ByteSpan{data}, late);
  ASSERT_TRUE(interval.ok());
  EXPECT_EQ(interval.value().start, late);
}

TEST(Board, BusyAccountingExcludesReconfiguration) {
  Board board(small_board());
  auto interval = board.configure(vadd_bitstream(), vt::Time::zero());
  ASSERT_TRUE(interval.ok());
  // Programming occupies the timeline but does not count as utilization
  // ("time spent computing OpenCL calls", paper definition).
  EXPECT_EQ(board.busy_total().ns(), 0);
  EXPECT_GT(board.busy_until(), vt::Time::zero());

  auto buffer = board.allocate(kMiB);
  ASSERT_TRUE(buffer.ok());
  Bytes data(kMiB);
  auto write = board.write(buffer.value(), 0, ByteSpan{data},
                           board.busy_until());
  ASSERT_TRUE(write.ok());
  EXPECT_EQ(board.busy_total().ns(), write.value().duration().ns());
}

TEST(Board, BusyBetweenClipsToWindow) {
  Board board(small_board());
  ASSERT_TRUE(board.configure(vadd_bitstream(), vt::Time::zero()).ok());
  auto buffer = board.allocate(kMiB);
  ASSERT_TRUE(buffer.ok());
  Bytes data(kMiB);
  auto interval =
      board.write(buffer.value(), 0, ByteSpan{data}, board.busy_until());
  ASSERT_TRUE(interval.ok());
  const vt::Time mid = interval.value().start +
                       vt::Duration::nanos(interval.value().duration().ns() / 2);
  EXPECT_NEAR(board.busy_between(interval.value().start, mid).ns(),
              interval.value().duration().ns() / 2, 2);
  EXPECT_EQ(board.busy_between(interval.value().end,
                               interval.value().end + vt::Duration::seconds(1))
                .ns(),
            0);
}

TEST(Board, KernelRequiresConfiguredBitstream) {
  Board board(small_board());
  ASSERT_TRUE(board.configure(vadd_bitstream(), vt::Time::zero()).ok());
  KernelLaunch launch;
  launch.kernel = "sobel";  // not in the vadd bitstream
  EXPECT_EQ(board.run_kernel(launch, board.busy_until()).status().code(),
            StatusCode::kNotFound);
}

TEST(Board, TimingOnlyModeSkipsDataButChecksBounds) {
  Board board(small_board(/*functional=*/false));
  ASSERT_TRUE(board.configure(vadd_bitstream(), vt::Time::zero()).ok());
  auto buffer = board.allocate(1024);
  ASSERT_TRUE(buffer.ok());
  Bytes data(512, 0xAA);
  ASSERT_TRUE(
      board.write(buffer.value(), 0, ByteSpan{data}, board.busy_until()).ok());
  Bytes out(512, 0xFF);
  ASSERT_TRUE(board.read(buffer.value(), 0, MutableByteSpan{out},
                         board.busy_until())
                  .ok());
  for (std::uint8_t byte : out) EXPECT_EQ(byte, 0);  // zeros, not data
  // Bounds still enforced.
  Bytes big(2048);
  EXPECT_FALSE(
      board.write(buffer.value(), 0, ByteSpan{big}, board.busy_until()).ok());
}

TEST(Board, TransferTimeDependsOnHostPcie) {
  BoardConfig gen2 = small_board();
  gen2.host = make_node_a();  // PCIe gen2
  Board slow(gen2);
  Board fast(small_board());  // node B, gen3
  ASSERT_TRUE(slow.configure(vadd_bitstream(), vt::Time::zero()).ok());
  ASSERT_TRUE(fast.configure(vadd_bitstream(), vt::Time::zero()).ok());
  auto slow_buffer = slow.allocate(8 * kMiB);
  auto fast_buffer = fast.allocate(8 * kMiB);
  Bytes data(8 * kMiB);
  auto slow_write =
      slow.write(slow_buffer.value(), 0, ByteSpan{data}, slow.busy_until());
  auto fast_write =
      fast.write(fast_buffer.value(), 0, ByteSpan{data}, fast.busy_until());
  EXPECT_GT(slow_write.value().duration().ns(),
            fast_write.value().duration().ns());
}

}  // namespace
}  // namespace bf::sim
