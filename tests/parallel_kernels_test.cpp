// WorkerPool semantics plus the determinism contract of the parallel
// functional kernels: every workload output must be byte-exact against the
// CPU reference no matter how many lanes the pool has. Runs under TSan via
// bench/run_sanitized.sh (ctest -L parallel).
#include <gtest/gtest.h>

#include <atomic>
#include <cstring>
#include <thread>
#include <vector>

#include "common/parallel.h"
#include "common/rng.h"
#include "sim/kernels.h"
#include "sim/memory.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

namespace bf {
namespace {

// ---- WorkerPool --------------------------------------------------------------

TEST(WorkerPool, RunsEveryTaskExactlyOnce) {
  WorkerPool pool(4);
  EXPECT_EQ(pool.size(), 4u);
  constexpr std::size_t kTasks = 257;
  std::vector<std::atomic<int>> runs(kTasks);
  pool.parallel_for(kTasks, [&](std::size_t i) { runs[i].fetch_add(1); });
  for (std::size_t i = 0; i < kTasks; ++i) {
    EXPECT_EQ(runs[i].load(), 1) << "task " << i;
  }
}

TEST(WorkerPool, SingleLaneRunsInline) {
  WorkerPool pool(1);
  EXPECT_EQ(pool.size(), 1u);
  const auto caller = std::this_thread::get_id();
  std::size_t ran = 0;
  pool.parallel_for(16, [&](std::size_t) {
    EXPECT_EQ(std::this_thread::get_id(), caller);
    ++ran;  // safe: single lane means no concurrency
  });
  EXPECT_EQ(ran, 16u);
}

TEST(WorkerPool, ZeroThreadsTreatedAsOne) {
  WorkerPool pool(0);
  EXPECT_EQ(pool.size(), 1u);
  std::size_t ran = 0;
  pool.parallel_for(3, [&](std::size_t) { ++ran; });
  EXPECT_EQ(ran, 3u);
}

TEST(WorkerPool, ZeroTasksIsANoOp) {
  WorkerPool pool(4);
  pool.parallel_for(0, [&](std::size_t) { FAIL() << "no task should run"; });
}

TEST(WorkerPool, BackToBackJobsDoNotLeakTasks) {
  WorkerPool pool(4);
  for (int round = 0; round < 50; ++round) {
    const std::size_t tasks = 1 + static_cast<std::size_t>(round % 7);
    std::atomic<std::size_t> ran{0};
    pool.parallel_for(tasks, [&](std::size_t) { ran.fetch_add(1); });
    ASSERT_EQ(ran.load(), tasks) << "round " << round;
  }
}

TEST(WorkerPool, ConcurrentCallersAreSerializedAndComplete) {
  WorkerPool pool(3);
  constexpr int kCallers = 4;
  constexpr std::size_t kTasks = 64;
  std::vector<std::atomic<int>> counts(kCallers);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (int c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      for (int round = 0; round < 20; ++round) {
        pool.parallel_for(kTasks, [&](std::size_t) { counts[c].fetch_add(1); });
      }
    });
  }
  for (auto& thread : callers) thread.join();
  for (int c = 0; c < kCallers; ++c) {
    EXPECT_EQ(counts[c].load(), 20 * static_cast<int>(kTasks));
  }
}

// ---- byte-exact parallel kernels ---------------------------------------------

sim::MemHandle alloc(sim::DeviceMemory& memory, std::uint64_t size) {
  auto handle = memory.allocate(size);
  BF_CHECK(handle.ok());
  return handle.value();
}

template <typename T>
void upload(sim::DeviceMemory& memory, sim::MemHandle handle,
            const std::vector<T>& data) {
  BF_CHECK(memory.write(handle, 0,
                        as_bytes(data.data(), data.size() * sizeof(T)))
               .ok());
}

template <typename T>
std::vector<T> download(sim::DeviceMemory& memory, sim::MemHandle handle,
                        std::size_t count) {
  std::vector<T> out(count);
  BF_CHECK(memory.read(handle, 0,
                       as_writable_bytes(out.data(), count * sizeof(T)))
               .ok());
  return out;
}

template <typename T>
void expect_bytes_eq(const std::vector<T>& got, const std::vector<T>& want,
                     const char* label) {
  ASSERT_EQ(got.size(), want.size()) << label;
  EXPECT_EQ(std::memcmp(got.data(), want.data(), got.size() * sizeof(T)), 0)
      << label << ": output not byte-exact";
}

// Pool sizes the contract is pinned at: serial, two lanes, many lanes.
const unsigned kLaneCounts[] = {1, 2, 4};

TEST(ParallelKernels, SobelByteExactAcrossLaneCounts) {
  // Odd dimensions exercise uneven row chunking; > 64 rows to clear the
  // min-grain threshold so the pool actually partitions.
  constexpr std::size_t kW = 201;
  constexpr std::size_t kH = 135;
  Rng rng(17);
  std::vector<std::uint32_t> image(kW * kH);
  for (auto& px : image) px = static_cast<std::uint32_t>(rng.next_below(256));
  const auto reference = workloads::sobel_reference(image, kW, kH);

  for (unsigned lanes : kLaneCounts) {
    sim::ScopedKernelParallelism scope(lanes);
    sim::DeviceMemory memory(1 << 22);
    sim::MemHandle in = alloc(memory, kW * kH * 4);
    sim::MemHandle out = alloc(memory, kW * kH * 4);
    upload(memory, in, image);
    sim::SobelKernel kernel;
    sim::KernelLaunch launch;
    launch.kernel = "sobel";
    launch.args = {in, out, std::int64_t{kW}, std::int64_t{kH}};
    ASSERT_TRUE(kernel.execute(launch, memory).ok()) << lanes << " lanes";
    expect_bytes_eq(download<std::uint32_t>(memory, out, kW * kH), reference,
                    "sobel");
  }
}

TEST(ParallelKernels, GemmByteExactAcrossLaneCounts) {
  // 67 is odd and non-multiple of every tile width, exercising the AVX2
  // remainder rows/columns and the scalar fallback blocks on one shape.
  for (const std::size_t n : {std::size_t{64}, std::size_t{67}}) {
    Rng rng(23);
    std::vector<float> a(n * n);
    std::vector<float> b(n * n);
    for (auto& v : a) v = static_cast<float>(rng.next_double(-1, 1));
    for (auto& v : b) v = static_cast<float>(rng.next_double(-1, 1));
    const auto reference = workloads::matmul_reference(a, b, n);

    for (unsigned lanes : kLaneCounts) {
      sim::ScopedKernelParallelism scope(lanes);
      sim::DeviceMemory memory(1 << 22);
      sim::MemHandle ha = alloc(memory, n * n * 4);
      sim::MemHandle hb = alloc(memory, n * n * 4);
      sim::MemHandle hc = alloc(memory, n * n * 4);
      upload(memory, ha, a);
      upload(memory, hb, b);
      sim::MatMulKernel kernel;
      sim::KernelLaunch launch;
      launch.kernel = "mm";
      launch.args = {ha, hb, hc, static_cast<std::int64_t>(n)};
      ASSERT_TRUE(kernel.execute(launch, memory).ok())
          << "n=" << n << " lanes=" << lanes;
      expect_bytes_eq(download<float>(memory, hc, n * n), reference, "mm");
    }
  }
}

TEST(ParallelKernels, ConvByteExactAcrossLaneCounts) {
  // AlexNet-conv1-shaped (scaled down): 3 input channels, 8 output
  // channels, 5x5 kernel, stride 2, pad 2, relu.
  constexpr std::size_t in_c = 3, in_h = 27, in_w = 27;
  constexpr std::size_t out_c = 8, out_h = 14, out_w = 14;
  constexpr std::size_t ksize = 5, stride = 2;
  constexpr std::int64_t pad = 2;
  Rng rng(31);
  std::vector<float> input(in_c * in_h * in_w);
  std::vector<float> weights(out_c * in_c * ksize * ksize);
  std::vector<float> bias(out_c);
  for (auto& v : input) v = static_cast<float>(rng.next_double(-1, 1));
  for (auto& v : weights) v = static_cast<float>(rng.next_double(-1, 1));
  for (auto& v : bias) v = static_cast<float>(rng.next_double(-1, 1));

  // CPU reference with the kernel's exact accumulation order (bias first,
  // then ic-ky-kx ascending): byte-exact, not approximately equal.
  std::vector<float> reference(out_c * out_h * out_w);
  for (std::size_t oc = 0; oc < out_c; ++oc) {
    for (std::size_t oy = 0; oy < out_h; ++oy) {
      for (std::size_t ox = 0; ox < out_w; ++ox) {
        float acc = bias[oc];
        for (std::size_t ic = 0; ic < in_c; ++ic) {
          for (std::size_t ky = 0; ky < ksize; ++ky) {
            for (std::size_t kx = 0; kx < ksize; ++kx) {
              const std::int64_t iy =
                  static_cast<std::int64_t>(oy * stride + ky) - pad;
              const std::int64_t ix =
                  static_cast<std::int64_t>(ox * stride + kx) - pad;
              if (iy < 0 || ix < 0 || iy >= static_cast<std::int64_t>(in_h) ||
                  ix >= static_cast<std::int64_t>(in_w)) {
                continue;
              }
              acc += input[(ic * in_h + static_cast<std::size_t>(iy)) * in_w +
                           static_cast<std::size_t>(ix)] *
                     weights[((oc * in_c + ic) * ksize + ky) * ksize + kx];
            }
          }
        }
        if (acc < 0.0F) acc = 0.0F;  // relu
        reference[(oc * out_h + oy) * out_w + ox] = acc;
      }
    }
  }

  for (unsigned lanes : kLaneCounts) {
    sim::ScopedKernelParallelism scope(lanes);
    sim::DeviceMemory memory(1 << 22);
    sim::MemHandle hin = alloc(memory, input.size() * 4);
    sim::MemHandle hw = alloc(memory, weights.size() * 4);
    sim::MemHandle hb = alloc(memory, bias.size() * 4);
    sim::MemHandle hout = alloc(memory, reference.size() * 4);
    upload(memory, hin, input);
    upload(memory, hw, weights);
    upload(memory, hb, bias);
    sim::ConvKernel kernel;
    sim::KernelLaunch launch;
    launch.kernel = "conv";
    launch.args = {hin,
                   hw,
                   hb,
                   hout,
                   std::int64_t{in_c},
                   std::int64_t{in_h},
                   std::int64_t{in_w},
                   std::int64_t{out_c},
                   std::int64_t{out_h},
                   std::int64_t{out_w},
                   std::int64_t{ksize},
                   std::int64_t{stride},
                   pad,
                   std::int64_t{1}};
    ASSERT_TRUE(kernel.execute(launch, memory).ok()) << lanes << " lanes";
    expect_bytes_eq(download<float>(memory, hout, reference.size()), reference,
                    "conv");
  }
}

TEST(ParallelKernels, PoolAndLrnAndFirAndVaddMatchSerialRun) {
  // The remaining parallel kernels are pinned against their own serial
  // (1-lane) output: the contract is that lane count never changes a bit.
  constexpr std::size_t channels = 6, in_h = 13, in_w = 13;
  constexpr std::size_t out_h = 6, out_w = 6;
  constexpr std::size_t fir_n = 40000, taps = 16;
  Rng rng(43);
  std::vector<float> feature(channels * in_h * in_w);
  std::vector<float> signal(fir_n);
  std::vector<float> coeffs(taps);
  for (auto& v : feature) v = static_cast<float>(rng.next_double(-2, 2));
  for (auto& v : signal) v = static_cast<float>(rng.next_double(-1, 1));
  for (auto& v : coeffs) v = static_cast<float>(rng.next_double(-1, 1));

  auto run_all = [&](unsigned lanes) {
    sim::ScopedKernelParallelism scope(lanes);
    sim::DeviceMemory memory(1 << 22);
    sim::MemHandle hfeat = alloc(memory, feature.size() * 4);
    sim::MemHandle hpool = alloc(memory, channels * out_h * out_w * 4);
    sim::MemHandle hlrn = alloc(memory, feature.size() * 4);
    sim::MemHandle hsig = alloc(memory, signal.size() * 4);
    sim::MemHandle hcoef = alloc(memory, coeffs.size() * 4);
    sim::MemHandle hfir = alloc(memory, signal.size() * 4);
    sim::MemHandle hsum = alloc(memory, signal.size() * 4);
    upload(memory, hfeat, feature);
    upload(memory, hsig, signal);
    upload(memory, hcoef, coeffs);

    sim::KernelLaunch pool_launch;
    pool_launch.kernel = "pool";
    pool_launch.args = {hfeat,
                        hpool,
                        std::int64_t{channels},
                        std::int64_t{in_h},
                        std::int64_t{in_w},
                        std::int64_t{out_h},
                        std::int64_t{out_w},
                        std::int64_t{3},
                        std::int64_t{2}};
    BF_CHECK(sim::PoolKernel().execute(pool_launch, memory).ok());

    sim::KernelLaunch lrn_launch;
    lrn_launch.kernel = "lrn";
    lrn_launch.args = {hfeat, hlrn, std::int64_t{channels},
                       std::int64_t{in_h}, std::int64_t{in_w}};
    BF_CHECK(sim::LrnKernel().execute(lrn_launch, memory).ok());

    sim::KernelLaunch fir_launch;
    fir_launch.kernel = "fir";
    fir_launch.args = {hsig, hcoef, hfir, std::int64_t{fir_n},
                       std::int64_t{taps}};
    BF_CHECK(sim::FirKernel().execute(fir_launch, memory).ok());

    sim::KernelLaunch vadd_launch;
    vadd_launch.kernel = "vadd";
    vadd_launch.args = {hsig, hfir, hsum, std::int64_t{fir_n}};
    BF_CHECK(sim::VaddKernel().execute(vadd_launch, memory).ok());

    struct Outputs {
      std::vector<float> pool, lrn, fir, vadd;
    } outs;
    outs.pool = download<float>(memory, hpool, channels * out_h * out_w);
    outs.lrn = download<float>(memory, hlrn, feature.size());
    outs.fir = download<float>(memory, hfir, fir_n);
    outs.vadd = download<float>(memory, hsum, fir_n);
    return outs;
  };

  const auto serial = run_all(1);
  for (unsigned lanes : {2u, 4u}) {
    const auto parallel = run_all(lanes);
    expect_bytes_eq(parallel.pool, serial.pool, "pool");
    expect_bytes_eq(parallel.lrn, serial.lrn, "lrn");
    expect_bytes_eq(parallel.fir, serial.fir, "fir");
    expect_bytes_eq(parallel.vadd, serial.vadd, "vadd");
  }
}

TEST(ParallelKernels, InPlaceSobelMatchesOutOfPlace) {
  // out == in is the aliasing case the snapshot paths exist for; it must
  // produce the same bytes as the two-buffer launch at any lane count.
  constexpr std::size_t kW = 129;
  constexpr std::size_t kH = 97;
  Rng rng(7);
  std::vector<std::uint32_t> image(kW * kH);
  for (auto& px : image) px = static_cast<std::uint32_t>(rng.next_below(256));
  const auto reference = workloads::sobel_reference(image, kW, kH);

  for (unsigned lanes : kLaneCounts) {
    sim::ScopedKernelParallelism scope(lanes);
    sim::DeviceMemory memory(1 << 22);
    sim::MemHandle buf = alloc(memory, kW * kH * 4);
    upload(memory, buf, image);
    sim::SobelKernel kernel;
    sim::KernelLaunch launch;
    launch.kernel = "sobel";
    launch.args = {buf, buf, std::int64_t{kW}, std::int64_t{kH}};
    ASSERT_TRUE(kernel.execute(launch, memory).ok()) << lanes << " lanes";
    expect_bytes_eq(download<std::uint32_t>(memory, buf, kW * kH), reference,
                    "sobel in-place");
  }
}

}  // namespace
}  // namespace bf
