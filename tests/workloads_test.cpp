// bf::workloads: functional correctness of the paper's three benchmarks,
// verified against CPU references and across runtimes (the transparency
// property at workload level).
#include <gtest/gtest.h>

#include <cmath>
#include <memory>

#include "devmgr/device_manager.h"
#include "native/native_runtime.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/board.h"
#include "workloads/alexnet.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

namespace bf::workloads {
namespace {

struct Rig {
  Rig() {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.memory_bytes = 512 * kMiB;
    bc.functional = true;
    board = std::make_unique<sim::Board>(bc);
    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    manager = std::make_unique<devmgr::DeviceManager>(mc, board.get(),
                                                      &node_shm);
    remote::ManagerAddress address;
    address.endpoint = &manager->endpoint();
    address.transport = net::local_control(bc.host);
    address.node_shm = &node_shm;
    remote = std::make_unique<remote::RemoteRuntime>(
        std::vector<remote::ManagerAddress>{address});
    native = std::make_unique<native::NativeRuntime>(
        std::vector<sim::Board*>{board.get()});
  }

  shm::Namespace node_shm;
  std::unique_ptr<sim::Board> board;
  std::unique_ptr<devmgr::DeviceManager> manager;
  std::unique_ptr<remote::RemoteRuntime> remote;
  std::unique_ptr<native::NativeRuntime> native;
};

TEST(SobelWorkload, MatchesCpuReferenceThroughRemotePath) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.remote->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  SobelWorkload workload(96, 64);
  ASSERT_TRUE(workload.setup(*context.value()).ok());
  ASSERT_TRUE(workload.handle_request(*context.value()).ok());
  const auto expected =
      sobel_reference(workload.input_frame(), 96, 64);
  EXPECT_EQ(workload.last_output(), expected);
  workload.teardown();
}

TEST(SobelWorkload, IdenticalResultsOnNativeAndRemote) {
  Rig rig;
  ocl::Session remote_session("r");
  ocl::Session native_session("n");
  auto remote_context = rig.remote->create_context("fpga-b", remote_session);
  ASSERT_TRUE(remote_context.ok());
  SobelWorkload remote_workload(64, 48);
  ASSERT_TRUE(remote_workload.setup(*remote_context.value()).ok());
  ASSERT_TRUE(remote_workload.handle_request(*remote_context.value()).ok());
  remote_workload.teardown();

  auto native_context = rig.native->create_context("fpga-b", native_session);
  ASSERT_TRUE(native_context.ok());
  SobelWorkload native_workload(64, 48);
  ASSERT_TRUE(native_workload.setup(*native_context.value()).ok());
  ASSERT_TRUE(native_workload.handle_request(*native_context.value()).ok());

  EXPECT_EQ(remote_workload.last_output(), native_workload.last_output());
}

TEST(SobelWorkload, MetadataMatchesPaperConfiguration) {
  SobelWorkload workload;  // defaults: 1920x1080
  EXPECT_EQ(workload.name(), "sobel");
  EXPECT_EQ(workload.accelerator(), "sobel");
  // ~8 MB read+write for the FHD frame (paper Fig 4b).
  EXPECT_EQ(workload.request_bytes_in(), 1920u * 1080 * 4);
  EXPECT_EQ(workload.request_bytes_out(), workload.request_bytes_in());
}

TEST(MatMulWorkload, MatchesCpuReference) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.remote->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  MatMulWorkload workload(32);
  ASSERT_TRUE(workload.setup(*context.value()).ok());
  ASSERT_TRUE(workload.handle_request(*context.value()).ok());
  const auto expected =
      matmul_reference(workload.lhs(), workload.rhs(), 32);
  ASSERT_EQ(workload.last_output().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(workload.last_output()[i], expected[i], 1e-4) << i;
  }
  workload.teardown();
}

TEST(MatMulWorkload, RequestBytesScaleQuadratically) {
  MatMulWorkload workload(448);
  EXPECT_EQ(workload.request_bytes_in(), 2ULL * 448 * 448 * 4);
  EXPECT_EQ(workload.request_bytes_out(), 448ULL * 448 * 4);
}

TEST(AlexNetWorkload, ScaledFunctionalInferenceProducesFiniteLogits) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.remote->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  AlexNetOptions options;
  options.channel_scale = 32;
  options.functional = true;
  AlexNetWorkload workload(options);
  ASSERT_TRUE(workload.setup(*context.value()).ok());
  ASSERT_TRUE(workload.handle_request(*context.value()).ok());
  bool any_nonzero = false;
  for (float logit : workload.last_logits()) {
    ASSERT_TRUE(std::isfinite(logit));
    if (logit != 0.0F) any_nonzero = true;
  }
  EXPECT_TRUE(any_nonzero);
  workload.teardown();
}

TEST(AlexNetWorkload, DeterministicAcrossRuns) {
  AlexNetOptions options;
  options.channel_scale = 32;
  options.functional = true;

  auto run_once = [&]() {
    Rig rig;
    ocl::Session session("t");
    auto context = rig.remote->create_context("fpga-b", session);
    BF_CHECK(context.ok());
    AlexNetWorkload workload(options);
    BF_CHECK(workload.setup(*context.value()).ok());
    BF_CHECK(workload.handle_request(*context.value()).ok());
    auto logits = workload.last_logits();
    workload.teardown();
    return logits;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(AlexNetWorkload, FullNetworkMacCountMatchesLiterature) {
  AlexNetWorkload full;
  // Ungrouped AlexNet: ~1.14 GMAC (conv 1077M + fc 59M).
  EXPECT_NEAR(static_cast<double>(full.total_macs()) / 1e9, 1.135, 0.02);
  EXPECT_EQ(full.layer_count(), 13u);
  // Input 3x227x227 floats, output 1000 logits.
  EXPECT_EQ(full.request_bytes_in(), 3u * 227 * 227 * 4);
  EXPECT_EQ(full.request_bytes_out(), 1000u * 4);
}

TEST(AlexNetWorkload, ChannelScaleShrinksWork) {
  AlexNetOptions options;
  options.channel_scale = 4;
  AlexNetWorkload scaled(options);
  AlexNetWorkload full;
  EXPECT_LT(scaled.total_macs(), full.total_macs() / 8);
  EXPECT_EQ(scaled.layer_count(), full.layer_count());
}

TEST(Workloads, BitstreamsMatchLibraryEntries) {
  SobelWorkload sobel(16, 16);
  MatMulWorkload mm(16);
  AlexNetWorkload alexnet;
  for (const auto& [bitstream, accelerator] :
       std::vector<std::pair<std::string, std::string>>{
           {sobel.bitstream(), sobel.accelerator()},
           {mm.bitstream(), mm.accelerator()},
           {alexnet.bitstream(), alexnet.accelerator()}}) {
    const sim::Bitstream* entry =
        sim::BitstreamLibrary::standard().find(bitstream);
    ASSERT_NE(entry, nullptr) << bitstream;
    EXPECT_EQ(entry->accelerator, accelerator);
  }
}

}  // namespace
}  // namespace bf::workloads
