// FIR and Histogram: the extra Spector-suite workloads, functionally
// verified against references over the remote path, plus a four-accelerator
// mixed-fleet scenario on the full testbed.
#include <gtest/gtest.h>

#include <memory>
#include <numeric>

#include "devmgr/device_manager.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/board.h"
#include "testbed/testbed.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"
#include "workloads/spector_extra.h"

namespace bf::workloads {
namespace {

struct Rig {
  Rig() {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.memory_bytes = 256 * kMiB;
    bc.functional = true;
    board = std::make_unique<sim::Board>(bc);
    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    manager = std::make_unique<devmgr::DeviceManager>(mc, board.get(),
                                                      &node_shm);
    remote::ManagerAddress address;
    address.endpoint = &manager->endpoint();
    address.transport = net::local_control(bc.host);
    address.node_shm = &node_shm;
    runtime = std::make_unique<remote::RemoteRuntime>(
        std::vector<remote::ManagerAddress>{address});
  }

  shm::Namespace node_shm;
  std::unique_ptr<sim::Board> board;
  std::unique_ptr<devmgr::DeviceManager> manager;
  std::unique_ptr<remote::RemoteRuntime> runtime;
};

TEST(FirWorkload, MatchesReference) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.runtime->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  FirWorkload workload(4096, 16);
  ASSERT_TRUE(workload.setup(*context.value()).ok());
  ASSERT_TRUE(workload.handle_request(*context.value()).ok());
  const auto expected = fir_reference(workload.signal(), workload.taps());
  ASSERT_EQ(workload.last_output().size(), expected.size());
  for (std::size_t i = 0; i < expected.size(); ++i) {
    ASSERT_NEAR(workload.last_output()[i], expected[i], 1e-5) << i;
  }
  workload.teardown();
}

TEST(FirWorkload, MovingAverageOfConstantIsConstant) {
  // A constant signal filtered by normalized taps converges to the
  // constant once the window fills.
  std::vector<float> signal(100, 2.0F);
  std::vector<float> taps(8, 1.0F / 8.0F);
  const auto out = fir_reference(signal, taps);
  EXPECT_NEAR(out[50], 2.0F, 1e-5);
  EXPECT_LT(out[0], 2.0F);  // warm-up region
}

TEST(HistogramWorkload, MatchesReference) {
  Rig rig;
  ocl::Session session("t");
  auto context = rig.runtime->create_context("fpga-b", session);
  ASSERT_TRUE(context.ok());
  HistogramWorkload workload(100'000);
  ASSERT_TRUE(workload.setup(*context.value()).ok());
  ASSERT_TRUE(workload.handle_request(*context.value()).ok());
  EXPECT_EQ(workload.last_histogram(),
            histogram_reference(workload.image()));
  // Counting conservation: bins sum to the pixel count.
  const std::uint64_t total = std::accumulate(
      workload.last_histogram().begin(), workload.last_histogram().end(),
      std::uint64_t{0});
  EXPECT_EQ(total, 100'000u);
  workload.teardown();
}

TEST(SpectorExtra, KernelTimingAnchors) {
  sim::FirKernel fir;
  sim::KernelLaunch fir_launch;
  fir_launch.kernel = "fir";
  fir_launch.args = {sim::MemHandle{1}, sim::MemHandle{2}, sim::MemHandle{3},
                     std::int64_t{1 << 20}, std::int64_t{64}};
  // 64 MMAC at 24 GMAC/s ~ 2.8 ms + launch overhead.
  EXPECT_NEAR(fir.execution_time(fir_launch).value().ms(), 2.9, 0.3);

  sim::HistogramKernel histogram;
  sim::KernelLaunch hist_launch;
  hist_launch.kernel = "histogram";
  hist_launch.args = {sim::MemHandle{1}, sim::MemHandle{2},
                      std::int64_t{1 << 21}};
  // 2M pixels at 2 Gpx/s ~ 1.05 ms + overhead.
  EXPECT_NEAR(histogram.execution_time(hist_launch).value().ms(), 1.2, 0.2);
}

TEST(SpectorExtra, FourAcceleratorFleetOnThreeBoards) {
  // sobel + mm + fir + histogram: more accelerator types than boards.
  // Classic time sharing cannot satisfy all four at once without evictions;
  // with 2 PR regions per board the whole fleet coexists.
  testbed::TestbedOptions options;
  options.pr_regions = 2;
  testbed::Testbed bed(options);
  ASSERT_TRUE(bed.deploy_blastfunction("sobel-1", [] {
                   return std::make_unique<SobelWorkload>(320, 240);
                 }).ok());
  ASSERT_TRUE(bed.deploy_blastfunction("mm-1", [] {
                   return std::make_unique<MatMulWorkload>(128);
                 }).ok());
  ASSERT_TRUE(bed.deploy_blastfunction("fir-1", [] {
                   return std::make_unique<FirWorkload>(1 << 16, 32);
                 }).ok());
  ASSERT_TRUE(bed.deploy_blastfunction("hist-1", [] {
                   return std::make_unique<HistogramWorkload>(1 << 18);
                 }).ok());
  for (const char* fn : {"sobel-1", "mm-1", "fir-1", "hist-1"}) {
    auto result = bed.gateway().invoke(fn);
    EXPECT_TRUE(result.ok()) << fn << ": " << result.status().to_string();
  }
  // Six region slots across 3 boards comfortably hold 4 accelerators.
  unsigned resident = 0;
  for (const char* node : testbed::Testbed::kNodeNames) {
    resident +=
        static_cast<unsigned>(bed.board(node).resident_accelerators().size());
  }
  EXPECT_GE(resident, 4u);
}

}  // namespace
}  // namespace bf::workloads
