// Native runtime: direct board access, the paper's baseline.
#include <gtest/gtest.h>

#include <cstring>
#include <numeric>
#include <vector>

#include "native/native_runtime.h"
#include "sim/bitstream.h"
#include "sim/board.h"

namespace bf {
namespace {

sim::BoardConfig test_board_config() {
  sim::BoardConfig config;
  config.id = "fpga-test";
  config.node = "B";
  config.host = sim::make_node_b();
  config.memory_bytes = 256 * kMiB;
  config.functional = true;
  return config;
}

class NativeRuntimeTest : public ::testing::Test {
 protected:
  NativeRuntimeTest()
      : board_(test_board_config()), runtime_({&board_}), session_("test") {}

  sim::Board board_;
  native::NativeRuntime runtime_;
  ocl::Session session_;
};

TEST_F(NativeRuntimeTest, EnumeratesPlatformAndDevice) {
  auto platforms = runtime_.platforms();
  ASSERT_TRUE(platforms.ok());
  ASSERT_EQ(platforms.value().size(), 1u);
  EXPECT_EQ(platforms.value()[0].vendor, "Intel");
  ASSERT_EQ(platforms.value()[0].device_ids.size(), 1u);
  EXPECT_EQ(platforms.value()[0].device_ids[0], "fpga-test");

  auto devices = runtime_.devices();
  ASSERT_TRUE(devices.ok());
  ASSERT_EQ(devices.value().size(), 1u);
  EXPECT_EQ(devices.value()[0].node, "B");
  EXPECT_EQ(devices.value()[0].accelerator, "");  // not yet configured
}

TEST_F(NativeRuntimeTest, ContextForUnknownDeviceFails) {
  auto context = runtime_.create_context("nope", session_);
  EXPECT_FALSE(context.ok());
  EXPECT_EQ(context.status().code(), StatusCode::kNotFound);
}

TEST_F(NativeRuntimeTest, VaddEndToEnd) {
  auto context = runtime_.create_context("fpga-test", session_);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(
      context.value()->program(sim::BitstreamLibrary::kVadd).ok());

  constexpr std::size_t kN = 1024;
  std::vector<float> a(kN), b(kN), c(kN, 0.0F);
  std::iota(a.begin(), a.end(), 0.0F);
  std::iota(b.begin(), b.end(), 100.0F);

  auto buf_a = context.value()->create_buffer(kN * sizeof(float));
  auto buf_b = context.value()->create_buffer(kN * sizeof(float));
  auto buf_c = context.value()->create_buffer(kN * sizeof(float));
  ASSERT_TRUE(buf_a.ok() && buf_b.ok() && buf_c.ok());

  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());

  ASSERT_TRUE(queue.value()
                  ->enqueue_write(buf_a.value(), 0,
                                  as_bytes(a.data(), kN * sizeof(float)),
                                  /*blocking=*/true)
                  .ok());
  ASSERT_TRUE(queue.value()
                  ->enqueue_write(buf_b.value(), 0,
                                  as_bytes(b.data(), kN * sizeof(float)),
                                  /*blocking=*/true)
                  .ok());

  auto kernel = context.value()->create_kernel("vadd");
  ASSERT_TRUE(kernel.ok());
  kernel.value().set_arg(0, buf_a.value());
  kernel.value().set_arg(1, buf_b.value());
  kernel.value().set_arg(2, buf_c.value());
  kernel.value().set_arg(3, std::int64_t{kN});

  auto kernel_event =
      queue.value()->enqueue_kernel(kernel.value(), ocl::NdRange{kN, 1, 1});
  ASSERT_TRUE(kernel_event.ok());
  ASSERT_TRUE(kernel_event.value()->wait().ok());

  ASSERT_TRUE(queue.value()
                  ->enqueue_read(buf_c.value(), 0,
                                 as_writable_bytes(c.data(),
                                                   kN * sizeof(float)),
                                 /*blocking=*/true)
                  .ok());

  for (std::size_t i = 0; i < kN; ++i) {
    ASSERT_FLOAT_EQ(c[i], a[i] + b[i]) << "at index " << i;
  }
  // Virtual time advanced: reconfiguration (~1.3s) dominates.
  EXPECT_GT(session_.now().sec(), 1.0);
  EXPECT_LT(session_.now().sec(), 5.0);
}

TEST_F(NativeRuntimeTest, KernelBeforeProgramFails) {
  auto context = runtime_.create_context("fpga-test", session_);
  ASSERT_TRUE(context.ok());
  auto kernel = context.value()->create_kernel("vadd");
  EXPECT_FALSE(kernel.ok());
}

TEST_F(NativeRuntimeTest, EventStatusLadder) {
  auto context = runtime_.create_context("fpga-test", session_);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context.value()->create_buffer(4 * kMiB);
  ASSERT_TRUE(buffer.ok());
  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());

  Bytes data(4 * kMiB, 0x5A);
  auto event = queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data},
                                            /*blocking=*/false);
  ASSERT_TRUE(event.ok());
  // Before waiting, the virtual clock sits before the transfer completes.
  EXPECT_NE(event.value()->status(), ocl::EventStatus::kComplete);
  ASSERT_TRUE(event.value()->wait().ok());
  EXPECT_EQ(event.value()->status(), ocl::EventStatus::kComplete);
  EXPECT_GE(session_.now(), event.value()->completion_time());
}

TEST_F(NativeRuntimeTest, ReprogrammingSameBitstreamIsCheap) {
  auto context = runtime_.create_context("fpga-test", session_);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  const vt::Time after_first = session_.now();
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  // No second reconfiguration: only host-side cost.
  EXPECT_LT((session_.now() - after_first).ms(), 1.0);
  EXPECT_EQ(board_.reconfiguration_count(), 1u);
}

TEST_F(NativeRuntimeTest, InOrderQueueSerializesOps) {
  auto context = runtime_.create_context("fpga-test", session_);
  ASSERT_TRUE(context.ok());
  ASSERT_TRUE(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context.value()->create_buffer(8 * kMiB);
  ASSERT_TRUE(buffer.ok());
  auto queue = context.value()->create_queue();
  ASSERT_TRUE(queue.ok());

  Bytes data(8 * kMiB, 1);
  auto first = queue.value()->enqueue_write(buffer.value(), 0, ByteSpan{data},
                                            false);
  auto second = queue.value()->enqueue_write(buffer.value(), 0,
                                             ByteSpan{data}, false);
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  // The second op starts only after the first completes.
  EXPECT_GE(second.value()->completion_time().ns(),
            first.value()->completion_time().ns() +
                (8 * kMiB) / 7);  // at least ~transfer time apart
  ASSERT_TRUE(queue.value()->finish().ok());
  EXPECT_GE(session_.now(), second.value()->completion_time());
}

}  // namespace
}  // namespace bf
