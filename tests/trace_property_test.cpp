// Span-invariant property test (ctest -L trace).
//
// Drives randomized workload mixes (sizes and request counts drawn from a
// seeded Rng) with tracing enabled and checks the structural invariants the
// exporter and critical-path analysis rely on, for every recorded span:
//
//   * well-formed: start <= end, non-zero trace/span ids;
//   * parent linkage: every non-root span's parent exists and the child's
//     interval nests inside the parent's;
//   * task split: queue-wait + execute partition the task span exactly
//     (same endpoints, durations sum);
//   * failure hygiene: aborted tasks (PR 3's FAILED/TIMED_OUT machinery,
//     here forced via the devmgr.task.abort fault site) leave no
//     task/op/kernel spans behind — only the gateway's root request span
//     records the failed request.
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "common/rng.h"
#include "fault/injector.h"
#include "testbed/testbed.h"
#include "trace/chrome_trace.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

namespace bf::trace {
namespace {

std::map<std::uint64_t, const Span*> index_by_span_id(
    const std::vector<Span>& spans) {
  std::map<std::uint64_t, const Span*> by_id;
  for (const Span& span : spans) {
    if (span.span_id != 0) by_id[span.span_id] = &span;
  }
  return by_id;
}

void check_invariants(const std::vector<Span>& spans) {
  const auto by_id = index_by_span_id(spans);
  std::size_t tasks_checked = 0;
  for (const Span& span : spans) {
    SCOPED_TRACE(span.track + "/" + span.name);
    EXPECT_LE(span.start.ns(), span.end.ns());
    EXPECT_NE(span.trace_id, 0u);
    EXPECT_NE(span.span_id, 0u);
    if (span.parent_span_id != 0) {
      auto parent = by_id.find(span.parent_span_id);
      ASSERT_NE(parent, by_id.end())
          << "span's parent was never recorded (orphan)";
      EXPECT_EQ(parent->second->trace_id, span.trace_id);
      EXPECT_GE(span.start.ns(), parent->second->start.ns())
          << "child starts before its parent";
      EXPECT_LE(span.end.ns(), parent->second->end.ns())
          << "child ends after its parent";
    }
    if (span.name != "task") continue;
    // Exactly one queue-wait and one execute child, partitioning the task.
    ++tasks_checked;
    const Span* wait = nullptr;
    const Span* exec = nullptr;
    for (const Span& child : spans) {
      if (child.parent_span_id != span.span_id) continue;
      if (child.name == "queue-wait") wait = &child;
      if (child.name == "execute") exec = &child;
    }
    ASSERT_NE(wait, nullptr);
    ASSERT_NE(exec, nullptr);
    EXPECT_EQ(wait->start.ns(), span.start.ns());
    EXPECT_EQ(wait->end.ns(), exec->start.ns());
    EXPECT_EQ(exec->end.ns(), span.end.ns());
    EXPECT_EQ((wait->end - wait->start).ns() + (exec->end - exec->start).ns(),
              (span.end - span.start).ns())
        << "queue-wait + execute != task";
  }
  EXPECT_GT(tasks_checked, 0u);
}

// Drives a seeded random mix of Sobel and MatMul tenants and returns the
// recorded spans.
std::vector<Span> run_mix(std::uint64_t seed) {
  TraceBuilder builder(seed);
  Rng rng(seed);
  {
    testbed::TestbedOptions options;
    options.trace = &builder;
    testbed::Testbed bed(options);
    const std::size_t sobel_sizes[] = {64, 96, 128};
    const std::size_t mm_sizes[] = {64, 112, 160};
    const std::size_t sobel = sobel_sizes[rng.next_u64() % 3];
    const std::size_t mm = mm_sizes[rng.next_u64() % 3];
    EXPECT_TRUE(bed.deploy_blastfunction("sobel-fn", [sobel] {
                     return std::make_unique<workloads::SobelWorkload>(sobel,
                                                                       sobel);
                   }).ok());
    EXPECT_TRUE(bed.deploy_blastfunction("mm-fn", [mm] {
                     return std::make_unique<workloads::MatMulWorkload>(mm);
                   }).ok());
    const int requests = 3 + static_cast<int>(rng.next_u64() % 3);
    for (int i = 0; i < requests; ++i) {
      const char* fn = rng.next_u64() % 2 == 0 ? "sobel-fn" : "mm-fn";
      EXPECT_TRUE(bed.gateway().invoke(fn).ok());
    }
  }
  return builder.spans();
}

TEST(TraceProperty, InvariantsHoldAcrossSeededMixes) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    const std::vector<Span> spans = run_mix(seed);
    ASSERT_FALSE(spans.empty());
    check_invariants(spans);
  }
}

TEST(TraceProperty, SameSeedSameSpans) {
  const std::vector<Span> first = run_mix(7);
  const std::vector<Span> second = run_mix(7);
  ASSERT_EQ(first.size(), second.size());
  for (std::size_t i = 0; i < first.size(); ++i) {
    EXPECT_EQ(first[i].track, second[i].track);
    EXPECT_EQ(first[i].name, second[i].name);
    EXPECT_EQ(first[i].start.ns(), second[i].start.ns());
    EXPECT_EQ(first[i].end.ns(), second[i].end.ns());
    EXPECT_EQ(first[i].trace_id, second[i].trace_id);
    EXPECT_EQ(first[i].span_id, second[i].span_id);
    EXPECT_EQ(first[i].parent_span_id, second[i].parent_span_id);
  }
}

TEST(TraceProperty, AbortedTasksLeaveNoDeviceSpans) {
  TraceBuilder builder(11);
  {
    testbed::TestbedOptions options;
    options.trace = &builder;
    testbed::Testbed bed(options);
    EXPECT_TRUE(bed.deploy_blastfunction("sobel-fn", [] {
                     return std::make_unique<workloads::SobelWorkload>(64, 64);
                   }).ok());
    fault::ScopedInjection inject(11);
    inject.site(fault::site::kDevmgrTaskAbort, {.probability = 1.0});
    for (int i = 0; i < 3; ++i) {
      (void)bed.gateway().invoke("sobel-fn");  // expected to fail
    }
  }
  std::size_t requests = 0;
  for (const Span& span : builder.spans()) {
    // No span may survive an aborted/poisoned task: nothing reached the
    // board, so the device-side taxonomy must be absent.
    EXPECT_NE(span.name, "task");
    EXPECT_NE(span.name, "queue-wait");
    EXPECT_NE(span.name, "execute");
    EXPECT_EQ(span.name.rfind("op:", 0), std::string::npos);
    EXPECT_EQ(span.name.rfind("kernel:", 0), std::string::npos);
    if (span.name == "request") ++requests;
  }
  // The gateway still records the failed requests' root spans.
  EXPECT_EQ(requests, 3u);
}

}  // namespace
}  // namespace bf::trace
