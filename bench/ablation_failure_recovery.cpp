// Ablation: failure handling under an injected transient-fault storm.
//
// The load experiments assume a healthy fabric; this ablation asks what the
// resilience layer (docs/RESILIENCE.md) buys when it is not. Three Sobel
// tenants run a closed loop of requests *through the gateway* (the layer
// whose policy is being ablated) with two transient fault sites armed — shm
// stage denials and mid-task aborts, both safe without deadlines — under
// three configurations:
//
//   none            default zero-cost options: every fault surfaces to the
//                   client as a failed request;
//   deadline        per-call deadlines only: failures are still surfaced,
//                   but a lost frame can no longer wedge a caller;
//   deadline+retry  the full stack: gateway-level bounded retry on top of
//                   per-channel deadlines absorbs transient faults.
//
// The headline number is the success rate: retries convert failed requests
// back into successes at a modest latency premium (the retried attempts and
// backoff are charged to the tenants' virtual clocks — nothing is free).
#include <cstdio>
#include <string>
#include <vector>

#include "fault/injector.h"
#include "experiment.h"

namespace bf::bench {
namespace {

constexpr int kTenants = 3;
constexpr int kRequestsPerTenant = 300;

struct Config {
  const char* label;
  bool deadline = false;
  unsigned invoke_attempts = 1;
};

struct RecoveryResult {
  std::uint64_t ok = 0;
  std::uint64_t errors = 0;
  double mean_latency_ms = 0.0;
};

RecoveryResult run_with(const Config& config) {
  // Same seed for every configuration: the fault pattern is identical, only
  // the handling differs.
  fault::ScopedInjection inject(/*seed=*/1234);
  inject.site(fault::site::kShmStageFail, {.probability = 0.03});
  inject.site(fault::site::kDevmgrTaskAbort, {.probability = 0.01});

  testbed::TestbedOptions options;
  if (config.deadline) {
    options.call_options.timeout = vt::Duration::seconds(10);
  }
  options.gateway.max_invoke_attempts = config.invoke_attempts;
  testbed::Testbed bed(options);

  auto factory = [] { return std::make_unique<workloads::SobelWorkload>(); };
  std::vector<std::string> functions;
  for (int i = 0; i < kTenants; ++i) {
    functions.push_back("sobel-" + std::to_string(i + 1));
    BF_CHECK(bed.deploy_blastfunction(functions.back(), factory).ok());
  }

  RecoveryResult out;
  double latency_sum_ms = 0.0;
  for (const auto& function : functions) {
    // Warm request (cold start excluded, as in the load experiments).
    (void)bed.gateway().invoke(function);
    for (int i = 0; i < kRequestsPerTenant; ++i) {
      auto invoked = bed.gateway().invoke(function);
      if (invoked.ok()) {
        ++out.ok;
        latency_sum_ms += invoked.value().latency.ms();
      } else {
        ++out.errors;
      }
    }
  }
  bed.gateway().shutdown_instances();
  out.mean_latency_ms =
      out.ok > 0 ? latency_sum_ms / static_cast<double>(out.ok) : 0.0;
  return out;
}

}  // namespace
}  // namespace bf::bench

int main() {
  using namespace bf::bench;
  std::printf("Ablation: failure handling under a transient-fault storm\n");
  std::printf("(%d Sobel tenants x %d gateway requests, shm stage denials "
              "3%% + mid-task aborts 1%%, same fault seed per row)\n\n",
              kTenants, kRequestsPerTenant);
  std::printf("%-16s | %9s | %7s | %7s | %9s\n", "handling", "latency", "ok",
              "errors", "success");
  std::printf("%s\n", std::string(60, '-').c_str());
  const Config configs[] = {
      {"none", /*deadline=*/false, /*invoke_attempts=*/1},
      {"deadline", /*deadline=*/true, /*invoke_attempts=*/1},
      {"deadline+retry", /*deadline=*/true, /*invoke_attempts=*/3},
  };
  for (const Config& config : configs) {
    RecoveryResult out = run_with(config);
    const double total = static_cast<double>(out.ok + out.errors);
    std::printf("%-16s | %6.2f ms | %7llu | %7llu | %8.2f%%\n", config.label,
                out.mean_latency_ms, static_cast<unsigned long long>(out.ok),
                static_cast<unsigned long long>(out.errors),
                total > 0 ? 100.0 * static_cast<double>(out.ok) / total : 0.0);
  }
  std::printf("\nBounded gateway retries absorb transient faults that the "
              "bare stack surfaces to clients; the latency premium is the "
              "modeled backoff plus the retried attempts themselves.\n");
  return 0;
}
