// Host-CPU cost of the end-to-end request path (ROADMAP item 4).
//
// The figure benches measure *modeled* (virtual-time) latency, which is
// deliberately insensitive to host-side implementation cost. This bench
// measures the real host cost per request instead: CPU-time per request
// (getrusage over all threads: app, dispatcher, device worker, pump) and
// heap allocations per request (global operator new/delete hook, local to
// this binary), under the fig4b sobel mix and the table3 MM mix on the two
// remote data paths. These are the numbers the zero-allocation pass moves;
// the figure outputs stay byte-identical.
//
// Reported counters (per request, steady state after warmup):
//   allocs_per_req       heap allocations
//   alloc_kb_per_req     heap bytes requested (KiB)
//   cpu_us_per_req       process CPU time (user+sys, all threads, µs)
#include <benchmark/benchmark.h>
#include <sys/resource.h>

#include <atomic>
#include <cstdint>
#include <cstdlib>
#include <new>

#include "experiment.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

// ---- allocation counting hook (binary-local) --------------------------------
//
// Replaces the global allocation functions for this binary only. Counts are
// relaxed atomics: the hot path is multi-threaded and we only need totals.

namespace {
std::atomic<std::uint64_t> g_alloc_count{0};
std::atomic<std::uint64_t> g_alloc_bytes{0};

inline void* counted_alloc(std::size_t size) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::malloc(size ? size : 1)) return p;
  throw std::bad_alloc();
}

inline void* counted_alloc(std::size_t size, std::align_val_t align) {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  if (void* p = std::aligned_alloc(static_cast<std::size_t>(align),
                                   (size + static_cast<std::size_t>(align) -
                                    1) &
                                       ~(static_cast<std::size_t>(align) - 1)))
    return p;
  throw std::bad_alloc();
}
}  // namespace

void* operator new(std::size_t size) { return counted_alloc(size); }
void* operator new[](std::size_t size) { return counted_alloc(size); }
void* operator new(std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new[](std::size_t size, std::align_val_t align) {
  return counted_alloc(size, align);
}
void* operator new(std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void* operator new[](std::size_t size, const std::nothrow_t&) noexcept {
  g_alloc_count.fetch_add(1, std::memory_order_relaxed);
  g_alloc_bytes.fetch_add(size, std::memory_order_relaxed);
  return std::malloc(size ? size : 1);
}
void operator delete(void* p) noexcept { std::free(p); }
void operator delete[](void* p) noexcept { std::free(p); }
void operator delete(void* p, std::size_t) noexcept { std::free(p); }
void operator delete[](void* p, std::size_t) noexcept { std::free(p); }
void operator delete(void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete[](void* p, std::align_val_t) noexcept { std::free(p); }
void operator delete(void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}
void operator delete[](void* p, std::size_t, std::align_val_t) noexcept {
  std::free(p);
}

namespace bf::bench {
namespace {

// Process CPU time (user + system, all threads) in microseconds.
double process_cpu_us() {
  rusage usage{};
  getrusage(RUSAGE_SELF, &usage);
  auto tv_us = [](const timeval& tv) {
    return 1e6 * static_cast<double>(tv.tv_sec) +
           static_cast<double>(tv.tv_usec);
  };
  return tv_us(usage.ru_utime) + tv_us(usage.ru_stime);
}

// Drives `reps` steady-state requests of `workload` through `rig` after
// `warmup` untimed ones, attributing CPU time and allocations to requests.
void run_mix(benchmark::State& state, DataPath path,
             workloads::Workload& workload) {
  OverheadRig rig(path);
  ocl::Session session("hotpath");
  auto devices = rig.runtime().devices();
  BF_CHECK(devices.ok());
  auto context = rig.runtime().create_context(devices.value()[0].id, session);
  BF_CHECK(context.ok());
  BF_CHECK(workload.setup(*context.value()).ok());

  constexpr int kWarmup = 32;
  for (int i = 0; i < kWarmup; ++i) {
    BF_CHECK(workload.handle_request(*context.value()).ok());
    session.compute(vt::Duration::millis(5));
  }

  const std::uint64_t allocs_before =
      g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t bytes_before =
      g_alloc_bytes.load(std::memory_order_relaxed);
  const double cpu_before = process_cpu_us();

  std::uint64_t requests = 0;
  for (auto _ : state) {
    BF_CHECK(workload.handle_request(*context.value()).ok());
    session.compute(vt::Duration::millis(5));
    ++requests;
  }

  const double cpu_after = process_cpu_us();
  const std::uint64_t allocs_after =
      g_alloc_count.load(std::memory_order_relaxed);
  const std::uint64_t bytes_after =
      g_alloc_bytes.load(std::memory_order_relaxed);
  workload.teardown();

  const double n = requests > 0 ? static_cast<double>(requests) : 1.0;
  state.counters["allocs_per_req"] =
      static_cast<double>(allocs_after - allocs_before) / n;
  state.counters["alloc_kb_per_req"] =
      static_cast<double>(bytes_after - bytes_before) / n / 1024.0;
  state.counters["cpu_us_per_req"] = (cpu_after - cpu_before) / n;
}

// fig4b mix: Sobel at 512x512 (mid-sweep point, ~2 MiB R+W per call).
void BM_Hotpath_Fig4bSobel_Grpc(benchmark::State& state) {
  workloads::SobelWorkload workload(512, 512);
  run_mix(state, DataPath::kGrpc, workload);
}
void BM_Hotpath_Fig4bSobel_Shm(benchmark::State& state) {
  workloads::SobelWorkload workload(512, 512);
  run_mix(state, DataPath::kShm, workload);
}

// table3 mix: the MM kernel at its table size (448x448).
void BM_Hotpath_Table3MM_Grpc(benchmark::State& state) {
  workloads::MatMulWorkload workload(448);
  run_mix(state, DataPath::kGrpc, workload);
}
void BM_Hotpath_Table3MM_Shm(benchmark::State& state) {
  workloads::MatMulWorkload workload(448);
  run_mix(state, DataPath::kShm, workload);
}

BENCHMARK(BM_Hotpath_Fig4bSobel_Grpc)->Iterations(256);
BENCHMARK(BM_Hotpath_Fig4bSobel_Shm)->Iterations(256);
BENCHMARK(BM_Hotpath_Table3MM_Grpc)->Iterations(256);
BENCHMARK(BM_Hotpath_Table3MM_Shm)->Iterations(256);

}  // namespace
}  // namespace bf::bench

BENCHMARK_MAIN();
