#!/usr/bin/env bash
# Builds the tree under TSan and ASan (the BF_SANITIZE matrix from
# CMakePresets.json) and runs the fault-, parallel-, recovery-, trace-,
# churn- and sched-labeled tests — the fault-injection matrix plus the
# queue/gate/event/pump suites it leans on, the worker-pool /
# parallel-kernel suites, the deadline/retry/health recovery suite, the
# golden-trace / span-invariant suites (TraceBuilder collects spans from
# app threads, devmgr workers and board completions concurrently), the
# registry churn invariant stress harness, and the device-scheduler policy
# suite (dispatcher threads push while the worker pops) — under each. Any
# sanitizer report fails the run.
#
# Usage: bench/run_sanitized.sh [thread|address ...]
#   (defaults to both; pass a subset to save time)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
sanitizers=("$@")
if [ ${#sanitizers[@]} -eq 0 ]; then
  sanitizers=(thread address)
fi

for sanitizer in "${sanitizers[@]}"; do
  case "$sanitizer" in
    thread)  preset=tsan ;;
    address) preset=asan ;;
    *) echo "unknown sanitizer '$sanitizer' (want thread|address)" >&2
       exit 2 ;;
  esac
  build="$repo/build-$preset"

  echo "=== [$sanitizer] configure ($build) ==="
  cmake -S "$repo" -B "$build" \
    -DCMAKE_BUILD_TYPE=RelWithDebInfo -DBF_SANITIZE="$sanitizer"

  echo "=== [$sanitizer] build ==="
  cmake --build "$build" -j"$(nproc)"

  echo "=== [$sanitizer] ctest -L 'fault|parallel|recovery|trace|churn|sched' ==="
  # halt_on_error makes any report a hard test failure; the second-kill
  # suppression keeps TSan's atexit handling from masking the exit code.
  TSAN_OPTIONS="halt_on_error=1 second_deadlock_stack=1" \
  ASAN_OPTIONS="halt_on_error=1 detect_leaks=1" \
  UBSAN_OPTIONS="halt_on_error=1 print_stacktrace=1" \
    ctest --test-dir "$build" -L "fault|parallel|recovery|trace|churn|sched" \
      --output-on-failure
done

echo "All sanitized fault, parallel, recovery, trace, churn and sched suites passed."
