// Wall-clock micro-benchmarks of the library's own hot paths (these measure
// the real implementation, not modeled time): wire-format encode/decode,
// shared-memory staging, device-memory allocation, the conservative gate
// and the functional kernels.
#include <benchmark/benchmark.h>

#include <utility>

#include "common/bytes.h"
#include "common/queue.h"
#include "fault/injector.h"
#include "net/endpoint.h"
#include "proto/messages.h"
#include "shm/segment.h"
#include "sim/board.h"
#include "sim/kernels.h"
#include "sim/memory.h"
#include "vt/gate.h"

namespace bf {
namespace {

void BM_WireVarint(benchmark::State& state) {
  for (auto _ : state) {
    proto::Writer writer;
    writer.reserve(64 * 10);
    for (std::uint64_t i = 0; i < 64; ++i) {
      writer.varint(1ULL << i);  // every encoded length, 1..10 bytes
    }
    benchmark::DoNotOptimize(writer.bytes().data());
  }
}
BENCHMARK(BM_WireVarint);

void BM_Fingerprint(benchmark::State& state) {
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  Bytes data(size, 0x5C);
  for (auto _ : state) {
    std::uint64_t hash = fingerprint(ByteSpan{data});
    benchmark::DoNotOptimize(hash);
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size));
}
BENCHMARK(BM_Fingerprint)->Range(4 << 10, 4 << 20);

void BM_MessageRoundtrip(benchmark::State& state) {
  proto::EnqueueKernelReq request;
  request.op_id = 42;
  request.queue_id = 7;
  request.kernel_id = 3;
  for (int i = 0; i < 14; ++i) {
    proto::KernelArgMsg arg;
    arg.kind = proto::KernelArgMsg::Kind::kInt;
    arg.int_value = i * 100;
    request.args.push_back(arg);
  }
  for (auto _ : state) {
    auto decoded = proto::reencode(request);
    benchmark::DoNotOptimize(decoded.ok());
  }
}
BENCHMARK(BM_MessageRoundtrip);

void BM_ShmStageFetch(benchmark::State& state) {
  // Ownership-transfer round trip: stage(Bytes&&) moves the buffer into the
  // slot and fetch_take moves it back out, so no bytes are physically
  // copied (the modeled copy cost is still charged to the cursor).
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  shm::Segment segment(sim::CopyModel(13e9), 1ULL << 30);
  Bytes data(size, 0xAB);
  vt::Cursor cursor;
  for (auto _ : state) {
    auto slot = segment.stage(std::move(data), cursor);
    benchmark::DoNotOptimize(slot.ok());
    auto taken = segment.fetch_take(slot.value(), cursor);
    benchmark::DoNotOptimize(taken.ok());
    data = std::move(taken.value());  // ping-pong the buffer back
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size) * 2);
}
BENCHMARK(BM_ShmStageFetch)->Range(4 << 10, 4 << 20);

void BM_ShmStageFetchCopy(benchmark::State& state) {
  // Physical-copy baseline: the span overloads memcpy in and out. Kept as
  // the reference point for what the move path above eliminates.
  const std::size_t size = static_cast<std::size_t>(state.range(0));
  shm::Segment segment(sim::CopyModel(13e9), 1ULL << 30);
  Bytes data(size, 0xAB);
  Bytes out(size);
  vt::Cursor cursor;
  for (auto _ : state) {
    auto slot = segment.stage(ByteSpan{data}, cursor);
    benchmark::DoNotOptimize(slot.ok());
    Status fetched = segment.fetch(slot.value(), MutableByteSpan{out}, cursor);
    benchmark::DoNotOptimize(fetched.ok());
    (void)segment.release(slot.value());
  }
  state.SetBytesProcessed(static_cast<std::int64_t>(state.iterations()) *
                          static_cast<std::int64_t>(size) * 2);
}
BENCHMARK(BM_ShmStageFetchCopy)->Range(4 << 10, 4 << 20);

void BM_FrameRoundtrip(benchmark::State& state) {
  // A notify-sized frame through the dispatcher's queue: build, enqueue,
  // pop. Payload ownership moves the whole way — cost should be O(1) in
  // payload size, not O(size).
  const std::size_t size = 64 << 10;
  BlockingQueue<net::Frame> queue;
  Bytes payload(size, 0xEE);
  for (auto _ : state) {
    net::Frame frame;
    frame.kind = net::Frame::Kind::kNotify;
    frame.method = proto::Method::kOpComplete;
    frame.correlation = 42;
    frame.payload = std::move(payload);
    queue.push(std::move(frame));
    auto popped = queue.try_pop();
    benchmark::DoNotOptimize(popped.has_item());
    payload = std::move(popped.item->payload);  // recycle for the next iteration
  }
  state.SetItemsProcessed(static_cast<std::int64_t>(state.iterations()));
}
BENCHMARK(BM_FrameRoundtrip);

void BM_DeviceMemoryAllocRelease(benchmark::State& state) {
  sim::DeviceMemory memory(1ULL << 30);
  for (auto _ : state) {
    auto a = memory.allocate(64 << 10);
    auto b = memory.allocate(256 << 10);
    benchmark::DoNotOptimize(a.ok() && b.ok());
    (void)memory.release(a.value());
    (void)memory.release(b.value());
  }
}
BENCHMARK(BM_DeviceMemoryAllocRelease);

void BM_GateAnnounceWait(benchmark::State& state) {
  vt::Gate gate;
  auto source = gate.register_source(vt::Time::zero());
  std::int64_t t = 0;
  for (auto _ : state) {
    source.announce(vt::Time::nanos(++t));
    benchmark::DoNotOptimize(gate.wait_safe(vt::Time::nanos(t)));
  }
}
BENCHMARK(BM_GateAnnounceWait);

void BM_BlockingQueue(benchmark::State& state) {
  BlockingQueue<int> queue;
  for (auto _ : state) {
    queue.push(1);
    benchmark::DoNotOptimize(queue.try_pop());
  }
}
BENCHMARK(BM_BlockingQueue);

void BM_SobelKernelFunctional(benchmark::State& state) {
  const std::int64_t dim = state.range(0);
  sim::DeviceMemory memory(1ULL << 28);
  auto in = memory.allocate(static_cast<std::uint64_t>(dim * dim * 4));
  auto out = memory.allocate(static_cast<std::uint64_t>(dim * dim * 4));
  std::vector<std::uint32_t> pixels(static_cast<std::size_t>(dim * dim), 7);
  (void)memory.write(in.value(), 0,
                     as_bytes(pixels.data(), pixels.size() * 4));
  sim::SobelKernel kernel;
  sim::KernelLaunch launch;
  launch.kernel = "sobel";
  launch.args = {in.value(), out.value(), dim, dim};
  for (auto _ : state) {
    Status s = kernel.execute(launch, memory);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(state.iterations() * dim * dim);
}
BENCHMARK(BM_SobelKernelFunctional)->Arg(64)->Arg(256);

void BM_GemmKernelFunctional(benchmark::State& state) {
  const std::int64_t n = state.range(0);
  sim::DeviceMemory memory(1ULL << 28);
  const auto bytes = static_cast<std::uint64_t>(n * n * 4);
  auto a = memory.allocate(bytes);
  auto b = memory.allocate(bytes);
  auto c = memory.allocate(bytes);
  std::vector<float> data(static_cast<std::size_t>(n * n), 1.5F);
  (void)memory.write(a.value(), 0, as_bytes(data.data(), data.size() * 4));
  (void)memory.write(b.value(), 0, as_bytes(data.data(), data.size() * 4));
  sim::MatMulKernel kernel;
  sim::KernelLaunch launch;
  launch.kernel = "mm";
  launch.args = {a.value(), b.value(), c.value(), n};
  for (auto _ : state) {
    Status s = kernel.execute(launch, memory);
    benchmark::DoNotOptimize(s.ok());
  }
  state.SetItemsProcessed(state.iterations() * n * n * n);
}
BENCHMARK(BM_GemmKernelFunctional)->Arg(64)->Arg(128);

void BM_FaultSiteDisarmed(benchmark::State& state) {
  // The acceptance bar for the instrumentation threaded through net/shm/
  // devmgr/remote: a disarmed site must cost one relaxed atomic load —
  // compare against BM_FaultSiteArmedMiss to see the slow path it avoids.
  for (auto _ : state) {
    bool fired = fault::should_fire(fault::site::kNetSendDelay);
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_FaultSiteDisarmed);

void BM_FaultSiteArmedMiss(benchmark::State& state) {
  // Armed but untriggered site: the per-site arm flag short-circuits the
  // locked map lookup, so this costs ~two relaxed loads (global + site).
  fault::ScopedInjection inject(1);
  for (auto _ : state) {
    bool fired = fault::should_fire(fault::site::kNetSendDelay);
    benchmark::DoNotOptimize(fired);
  }
}
BENCHMARK(BM_FaultSiteArmedMiss);

}  // namespace
}  // namespace bf

BENCHMARK_MAIN();
