// Ablation: multi-operation tasks (paper §III-B).
//
// BlastFunction batches a client's command-queue operations into one atomic
// task sealed by the flush; the alternative is to flush after every
// operation, paying a full control round trip (and a scheduling slot) per
// op. This ablation measures a Sobel request both ways, alone and with a
// competing tenant, showing both the latency saving and the atomicity
// benefit (no interleaving inside a request).
#include <cstdio>

#include "experiment.h"

namespace bf::bench {
namespace {

// One request; flush per op or one flush at the end.
double request_ms(ocl::Context& context, workloads::SobelWorkload& workload,
                  ocl::CommandQueue& queue, ocl::Buffer in, ocl::Buffer out,
                  ocl::Kernel& kernel, bool flush_per_op) {
  auto& session = context.session();
  const vt::Time before = session.now();
  const auto& frame = workload.input_frame();
  auto write = queue.enqueue_write(
      in, 0, as_bytes(frame.data(), frame.size() * 4), flush_per_op);
  BF_CHECK(write.ok());
  kernel.set_arg(0, in);
  kernel.set_arg(1, out);
  kernel.set_arg(2, std::int64_t{1920});
  kernel.set_arg(3, std::int64_t{1080});
  auto launch = queue.enqueue_kernel(kernel, {1920, 1080, 1});
  BF_CHECK(launch.ok());
  if (flush_per_op) BF_CHECK(launch.value()->wait().ok());
  Bytes result(frame.size() * 4);
  auto read = queue.enqueue_read(out, 0, MutableByteSpan{result}, true);
  BF_CHECK(read.ok());
  return (session.now() - before).ms();
}

double measure(bool flush_per_op, int reps) {
  OverheadRig rig(DataPath::kShm);
  ocl::Session session("granularity");
  auto devices = rig.runtime().devices();
  BF_CHECK(devices.ok());
  auto context = rig.runtime().create_context(devices.value()[0].id, session);
  BF_CHECK(context.ok());
  workloads::SobelWorkload workload;
  BF_CHECK(context.value()->program(workload.bitstream()).ok());
  auto in = context.value()->create_buffer(1920 * 1080 * 4);
  auto out = context.value()->create_buffer(1920 * 1080 * 4);
  BF_CHECK(in.ok() && out.ok());
  auto kernel = context.value()->create_kernel("sobel");
  BF_CHECK(kernel.ok());
  auto queue = context.value()->create_queue();
  BF_CHECK(queue.ok());

  double total = 0.0;
  for (int i = 0; i <= reps; ++i) {
    const double ms =
        request_ms(*context.value(), workload, *queue.value(), in.value(),
                   out.value(), kernel.value(), flush_per_op);
    if (i > 0) total += ms;
  }
  return total / reps;
}

}  // namespace
}  // namespace bf::bench

int main() {
  using namespace bf::bench;

  const double batched = measure(/*flush_per_op=*/false, 5);
  const double per_op = measure(/*flush_per_op=*/true, 5);

  std::printf("Ablation: task granularity (Sobel 1920x1080, shm path)\n");
  std::printf("%-34s | %10s\n", "strategy", "RTT (ms)");
  std::printf("%s\n", std::string(48, '-').c_str());
  std::printf("%-34s | %10.3f\n", "one task per request (flush once)",
              batched);
  std::printf("%-34s | %10.3f\n", "one task per operation", per_op);
  std::printf("\nBatching ops into a single atomic task saves %.2f ms per "
              "request (%.0f%%) by paying the control round trip once — the "
              "design choice of paper Section III-B.\n",
              per_op - batched, 100.0 * (per_op - batched) / per_op);
  return 0;
}
