// Table II: multi-function Sobel test — 5 BlastFunction functions sharing 3
// boards versus 3 Native functions (one per board), under the Table I load
// configurations. Reports per-function FPGA time utilization, mean latency,
// processed and target throughput.
//
// Paper shape to reproduce: both systems keep up at low load; BlastFunction
// sustains two extra tenants with comparable latencies and raises total
// utilization; at high load the single-connection closed loop caps
// Processed at ~1/latency.
#include <cstdio>
#include <vector>

#include "experiment.h"

int main() {
  using namespace bf;
  using namespace bf::bench;

  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>();
  };

  std::vector<ScenarioResult> cells;
  for (bool blastfunction : {true, false}) {
    for (const LoadConfig& config : sobel_configs()) {
      cells.push_back(
          run_sharing_cell(blastfunction, "sobel", factory, config));
    }
  }

  std::printf("Table II: multi-function Sobel (per-function results)\n");
  print_per_function_table(cells);

  std::printf("\nAggregates (utilization max 300%%):\n");
  print_aggregate_table(cells);

  // Shape check: in every configuration BlastFunction serves at least as
  // many requests in total as Native and uses the boards at least as much.
  std::printf("\nShape checks vs paper:\n");
  for (std::size_t i = 0; i < 3; ++i) {
    const auto& bf_cell = cells[i];
    const auto& native_cell = cells[i + 3];
    std::printf(
        "  %-12s: processed BF %.1f vs Native %.1f rq/s | util BF %.1f%% vs "
        "Native %.1f%%\n",
        bf_cell.configuration.c_str(), bf_cell.aggregate_processed_rps,
        native_cell.aggregate_processed_rps,
        bf_cell.aggregate_utilization_pct,
        native_cell.aggregate_utilization_pct);
  }
  return 0;
}
