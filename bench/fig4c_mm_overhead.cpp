// Figure 4(c): Matrix-Multiply round-trip latency versus matrix size
// (16 .. 4096), Native / BlastFunction (gRPC) / BlastFunction shm.
//
// Paper shape: compute-bound — both remote paths start at the ~2 ms control
// floor and converge to Native as N grows (Native 0.45 ms at 16, 3.571 s at
// 4096; shm ends only ~17 ms above Native, a 0.27% relative overhead).
#include <cstdio>
#include <vector>

#include "experiment.h"

namespace bf::bench {
namespace {

double mm_rtt_ms(OverheadRig& rig, std::size_t n, int reps) {
  ocl::Session session("fig4c");
  auto devices = rig.runtime().devices();
  BF_CHECK(devices.ok());
  auto context = rig.runtime().create_context(devices.value()[0].id, session);
  BF_CHECK(context.ok());
  workloads::MatMulWorkload workload(n);
  BF_CHECK(workload.setup(*context.value()).ok());
  double total_ms = 0.0;
  for (int i = 0; i <= reps; ++i) {
    const vt::Time before = session.now();
    BF_CHECK(workload.handle_request(*context.value()).ok());
    if (i > 0) total_ms += (session.now() - before).ms();
    session.compute(vt::Duration::millis(200));
  }
  workload.teardown();
  return total_ms / reps;
}

}  // namespace
}  // namespace bf::bench

int main() {
  using namespace bf;
  using namespace bf::bench;

  std::printf("Figure 4(c): MM kernel latency vs matrix size\n");
  std::printf("%-6s | %12s | %16s | %18s | %9s | %9s\n", "N", "Native (ms)",
              "BlastFunction(ms)", "BlastFunction shm", "shm - nat",
              "shm ovh%");
  std::printf("%s\n", std::string(86, '-').c_str());

  const std::size_t max_n = fig_smoke() ? 128 : 4096;
  double native_small = 0.0;
  double native_large = 0.0;
  double grpc_large = 0.0;
  double shm_large = 0.0;
  for (std::size_t n = 16; n <= max_n; n *= 2) {
    OverheadRig native(DataPath::kNative);
    OverheadRig grpc(DataPath::kGrpc);
    OverheadRig shm(DataPath::kShm);
    const int reps = n >= 2048 ? 2 : 4;
    const double native_ms = mm_rtt_ms(native, n, reps);
    const double grpc_ms = mm_rtt_ms(grpc, n, reps);
    const double shm_ms = mm_rtt_ms(shm, n, reps);
    if (n == 16) native_small = native_ms;
    if (n == 4096) {
      native_large = native_ms;
      grpc_large = grpc_ms;
      shm_large = shm_ms;
    }
    std::printf("%-6zu | %12.3f | %16.3f | %18.3f | %6.2f ms | %8.2f%%\n", n,
                native_ms, grpc_ms, shm_ms, shm_ms - native_ms,
                100.0 * (shm_ms - native_ms) / native_ms);
  }

  std::printf("\nShape checks vs paper:\n");
  std::printf("  Native N=16        : %.2f ms   (paper: 0.45 ms)\n",
              native_small);
  std::printf("  Native N=4096      : %.0f ms   (paper: 3571 ms)\n",
              native_large);
  std::printf("  BlastFunction 4096 : %.0f ms   (paper: 3675 ms)\n",
              grpc_large);
  std::printf("  shm 4096           : %.0f ms   (paper: 3588 ms, +17 ms)\n",
              shm_large);
  return 0;
}
