// Ablation: data-path design (paper §III-B / Figure 4).
//
// The paper's argument for the shared-memory data plane is that gRPC costs
// four data copies plus protobuf serialization where shm needs one copy.
// This ablation sweeps the number of extra copies in the gRPC-analogue
// transport and compares against the shm plane, quantifying how much each
// copy contributes to the Sobel request RTT.
#include <cstdio>
#include <memory>

#include "experiment.h"

namespace bf::bench {
namespace {

double sobel_rtt_with_copies(unsigned extra_copies) {
  sim::BoardConfig bc;
  bc.id = "fpga-b";
  bc.node = "B";
  bc.host = sim::make_node_b();
  bc.functional = false;
  sim::Board board(bc);
  shm::Namespace ns;

  devmgr::DeviceManagerConfig mc;
  mc.id = "devmgr-b";
  mc.allow_shared_memory = false;
  devmgr::DeviceManager manager(mc, &board, nullptr);

  remote::ManagerAddress address;
  address.endpoint = &manager.endpoint();
  // Custom transport: standard local link, variable copy count.
  address.transport = net::TransportCost(
      bc.host.serialization,
      sim::LinkModel(vt::Duration::nanos(bc.host.grpc_control_rtt.ns() / 4),
                     8.0 * 1024 * 1024 * 1024),
      bc.host.memcpy_model, extra_copies);
  address.prefer_shared_memory = false;
  remote::RemoteRuntime runtime({address});

  ocl::Session session("ablation");
  auto devices = runtime.devices();
  BF_CHECK(devices.ok());
  auto context = runtime.create_context(devices.value()[0].id, session);
  BF_CHECK(context.ok());
  workloads::SobelWorkload workload;  // 1920x1080
  BF_CHECK(workload.setup(*context.value()).ok());
  double total = 0.0;
  constexpr int kReps = 4;
  for (int i = 0; i <= kReps; ++i) {
    const vt::Time before = session.now();
    BF_CHECK(workload.handle_request(*context.value()).ok());
    if (i > 0) total += (session.now() - before).ms();
  }
  workload.teardown();
  return total / kReps;
}

double sobel_rtt_shm() {
  OverheadRig rig(DataPath::kShm);
  ocl::Session session("ablation");
  auto devices = rig.runtime().devices();
  BF_CHECK(devices.ok());
  auto context = rig.runtime().create_context(devices.value()[0].id, session);
  BF_CHECK(context.ok());
  workloads::SobelWorkload workload;
  BF_CHECK(workload.setup(*context.value()).ok());
  double total = 0.0;
  constexpr int kReps = 4;
  for (int i = 0; i <= kReps; ++i) {
    const vt::Time before = session.now();
    BF_CHECK(workload.handle_request(*context.value()).ok());
    if (i > 0) total += (session.now() - before).ms();
  }
  workload.teardown();
  return total / kReps;
}

}  // namespace
}  // namespace bf::bench

int main() {
  using namespace bf::bench;

  std::printf("Ablation: Sobel (1920x1080) request RTT vs data-path copies\n");
  std::printf("%-28s | %10s\n", "data path", "RTT (ms)");
  std::printf("%s\n", std::string(43, '-').c_str());

  double with_three = 0.0;
  double with_zero = 0.0;
  for (unsigned copies = 0; copies <= 4; ++copies) {
    const double rtt = sobel_rtt_with_copies(copies);
    if (copies == 0) with_zero = rtt;
    if (copies == 3) with_three = rtt;
    std::printf("gRPC, %u extra cop%s         | %10.3f\n", copies,
                copies == 1 ? "y " : "ies", rtt);
  }
  const double shm = sobel_rtt_shm();
  std::printf("%-28s | %10.3f\n", "shared memory (1 copy)", shm);

  std::printf("\nEach extra copy adds ~%.2f ms at this payload; the shm "
              "plane saves %.2f ms vs the deployed gRPC path (3 copies).\n",
              (with_three - with_zero) / 3.0, with_three - shm);
  return 0;
}
