// Table IV: PipeCNN/AlexNet aggregate results, medium and high load only
// (the accelerator serves few requests per second).
//
// Paper shape: BlastFunction reaches higher utilization and total processed
// requests thanks to the two extra tenants, but pays *higher* latency than
// Native (~125-133 ms vs ~92-94 ms) because the host calls the kernels many
// times per request — each per-layer synchronization is a remote task.
// Native PipeCNN keeps a warm process (233 MB of weights make per-request
// setup impossible), so it does not pay the fork overhead of Table II/III.
#include <cstdio>
#include <vector>

#include "experiment.h"

int main() {
  using namespace bf;
  using namespace bf::bench;

  auto factory = [] {
    return std::make_unique<workloads::AlexNetWorkload>();
  };

  SharingOptions options;
  options.warmup = vt::Duration::seconds(5);
  options.duration = vt::Duration::seconds(20);
  options.native_mode = faas::ExecutionMode::kPersistent;  // warm weights
  // Sequential pre-warm pins the tenants' gate-registration order, making
  // the high-load cells run-to-run deterministic (docs/SCHEDULING.md).
  options.prewarm = true;

  std::vector<ScenarioResult> cells;
  for (bool blastfunction : {true, false}) {
    for (const LoadConfig& config : alexnet_configs()) {
      cells.push_back(run_sharing_cell(blastfunction, "alexnet", factory,
                                       config, options));
    }
  }

  std::printf("Table IV: PipeCNN AlexNet (aggregate results)\n");
  print_aggregate_table(cells);

  std::printf("\nShape checks vs paper:\n");
  std::printf("  Native latency ~92-94 ms, BlastFunction higher (~125-133 "
              "ms) due to per-layer tasks:\n");
  for (const ScenarioResult& cell : cells) {
    std::printf("    %-14s %-12s: %.2f ms\n", cell.scenario.c_str(),
                cell.configuration.c_str(), cell.aggregate_latency_ms);
  }
  const double bf_high_util = cells[1].aggregate_utilization_pct;
  const double native_high_util = cells[3].aggregate_utilization_pct;
  std::printf("  High-load utilization: BF %.1f%% vs Native %.1f%% "
              "(paper: 202.1%% vs 189.8%%)\n",
              bf_high_util, native_high_util);
  return 0;
}
