// Ablation: data plane under multi-tenant load.
//
// The paper's load experiments (Tables II-IV) all use the shared-memory
// plane; Figure 4 compares the planes only one call at a time. This
// ablation runs the Table II medium-load Sobel scenario on both planes,
// showing that the gRPC path's extra copies do not just add latency — they
// consume board-adjacent host time that inflates every tenant's response
// under concurrency.
#include <cstdio>

#include "experiment.h"

namespace bf::bench {
namespace {

ScenarioResult run_with_plane(bool use_shared_memory) {
  testbed::TestbedOptions options;
  options.use_shared_memory = use_shared_memory;
  testbed::Testbed bed(options);
  auto factory = [] { return std::make_unique<workloads::SobelWorkload>(); };
  const LoadConfig load = sobel_configs()[1];  // medium
  for (std::size_t i = 0; i < load.rates.size(); ++i) {
    BF_CHECK(bed.deploy_blastfunction("sobel-" + std::to_string(i + 1),
                                      factory)
                 .ok());
  }
  std::vector<loadgen::DriveSpec> specs;
  for (std::size_t i = 0; i < load.rates.size(); ++i) {
    loadgen::DriveSpec spec;
    spec.function = "sobel-" + std::to_string(i + 1);
    spec.target_rps = load.rates[i];
    spec.warmup = vt::Duration::seconds(4);
    spec.duration = vt::Duration::seconds(15);
    specs.push_back(spec);
  }
  auto results = loadgen::drive_all(bed.gateway(), specs);

  ScenarioResult out;
  out.scenario = use_shared_memory ? "shared memory" : "gRPC data plane";
  out.configuration = load.name;
  double weighted = 0.0;
  double count = 0.0;
  for (const auto& r : results) {
    weighted += (r.latency_ms.empty() ? 0.0 : r.latency_ms.mean()) *
                static_cast<double>(r.ok);
    count += static_cast<double>(r.ok);
    out.aggregate_processed_rps += r.processed_rps;
    out.aggregate_target_rps += r.target_rps;
  }
  out.aggregate_latency_ms = count > 0 ? weighted / count : 0.0;
  const vt::Time from = vt::Time::seconds(4);
  const vt::Time to = from + vt::Duration::seconds(15);
  out.aggregate_utilization_pct = bed.aggregate_utilization_pct(from, to);
  return out;
}

}  // namespace
}  // namespace bf::bench

int main() {
  using namespace bf::bench;
  std::printf("Ablation: data plane under Table II medium load "
              "(5 Sobel tenants)\n");
  std::printf("%-16s | %9s | %11s | %16s\n", "plane", "latency",
              "utilization", "processed/target");
  std::printf("%s\n", std::string(62, '-').c_str());
  for (bool shm : {true, false}) {
    ScenarioResult out = run_with_plane(shm);
    std::printf("%-16s | %6.2f ms | %9.1f%% | %6.1f / %5.0f\n",
                out.scenario.c_str(), out.aggregate_latency_ms,
                out.aggregate_utilization_pct, out.aggregate_processed_rps,
                out.aggregate_target_rps);
  }
  std::printf("\nThe shared-memory plane is why the paper's load results "
              "hold: with inline-bytes gRPC every 8 MB frame pays "
              "serialization plus three extra copies per direction.\n");
  return 0;
}
