// Figure 4(b): Sobel operator round-trip latency versus image size, for
// Native / BlastFunction (gRPC) / BlastFunction shm on a single node.
//
// Paper shape: linear in pixel count; Native from 0.27 ms (10x10) to
// ~14.5 ms (1920x1080); the shm path a constant ~2 ms above Native; the
// gRPC path diverging with size (extra copies of ~8 MB per call).
#include <cstdio>
#include <vector>

#include "experiment.h"

namespace bf::bench {
namespace {

double sobel_rtt_ms(OverheadRig& rig, std::size_t width, std::size_t height,
                    int reps) {
  ocl::Session session("fig4b");
  auto devices = rig.runtime().devices();
  BF_CHECK(devices.ok());
  auto context = rig.runtime().create_context(devices.value()[0].id, session);
  BF_CHECK(context.ok());
  workloads::SobelWorkload workload(width, height);
  BF_CHECK(workload.setup(*context.value()).ok());
  double total_ms = 0.0;
  for (int i = 0; i <= reps; ++i) {
    const vt::Time before = session.now();
    BF_CHECK(workload.handle_request(*context.value()).ok());
    if (i > 0) total_ms += (session.now() - before).ms();
    session.compute(vt::Duration::millis(200));
  }
  workload.teardown();
  return total_ms / reps;
}

}  // namespace
}  // namespace bf::bench

int main() {
  using namespace bf;
  using namespace bf::bench;

  std::vector<std::pair<std::size_t, std::size_t>> sizes = {
      {10, 10},    {64, 64},    {128, 128},  {256, 256},
      {512, 512},  {800, 600},  {1024, 768}, {1280, 720},
      {1600, 900}, {1920, 1080}};
  if (fig_smoke()) sizes.resize(4);  // cap at 256x256

  std::printf("Figure 4(b): Sobel operator latency vs image size\n");
  std::printf("%-11s | %10s | %12s | %16s | %18s | %9s\n", "image",
              "R+W bytes", "Native (ms)", "BlastFunction(ms)",
              "BlastFunction shm", "shm - nat");
  std::printf("%s\n", std::string(92, '-').c_str());

  double native_small = 0.0;
  double native_large = 0.0;
  double shm_delta_large = 0.0;
  for (const auto& [width, height] : sizes) {
    OverheadRig native(DataPath::kNative);
    OverheadRig grpc(DataPath::kGrpc);
    OverheadRig shm(DataPath::kShm);
    const double native_ms = sobel_rtt_ms(native, width, height, 4);
    const double grpc_ms = sobel_rtt_ms(grpc, width, height, 4);
    const double shm_ms = sobel_rtt_ms(shm, width, height, 4);
    if (width == 10) native_small = native_ms;
    if (width == 1920) {
      native_large = native_ms;
      shm_delta_large = shm_ms - native_ms;
    }
    const std::uint64_t rw_bytes =
        2ULL * width * height * sizeof(std::uint32_t);
    std::printf("%4zux%-5zu | %10llu | %12.3f | %16.3f | %18.3f | %6.2f ms\n",
                width, height,
                static_cast<unsigned long long>(rw_bytes), native_ms, grpc_ms,
                shm_ms, shm_ms - native_ms);
  }

  std::printf("\nShape checks vs paper:\n");
  std::printf("  Native 10x10        : %.2f ms (paper: 0.27 ms)\n",
              native_small);
  std::printf("  Native 1920x1080    : %.2f ms (paper: 14.53 ms)\n",
              native_large);
  std::printf("  shm delta at FHD    : %.2f ms (paper: ~2 ms constant)\n",
              shm_delta_large);
  return 0;
}
