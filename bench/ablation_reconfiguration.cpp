// Ablation: reconfiguration and live migration (paper §III-C).
//
// Part 1 sweeps modeled full-device reconfiguration time against bitstream
// size. Part 2 reproduces the Registry's migration flow: three boards all
// serving Sobel tenants, then an MM function arrives — Algorithm 1 must pick
// a redistributable board, migrate its tenants away (create-before-delete)
// and flag the board for the MM bitstream.
#include <cstdio>

#include "experiment.h"

int main() {
  using namespace bf;
  using namespace bf::bench;

  std::printf("Part 1: reconfiguration time vs bitstream size\n");
  std::printf("%-24s | %10s | %14s\n", "bitstream", "size", "reconfig (ms)");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (const sim::Bitstream& bitstream :
       sim::BitstreamLibrary::standard().all()) {
    std::printf("%-24s | %10s | %14.1f\n", bitstream.id.c_str(),
                human_size(bitstream.size_bytes).c_str(),
                bitstream.reconfiguration_time().ms());
  }

  std::printf("\nPart 2: live migration when a new accelerator arrives\n");
  testbed::Testbed bed;
  auto sobel = [] { return std::make_unique<workloads::SobelWorkload>(); };
  auto mm = [] { return std::make_unique<workloads::MatMulWorkload>(); };

  // Fill all three boards with Sobel tenants (two waves so each board has
  // at least one tenant and each board carries the sobel bitstream).
  for (int i = 1; i <= 6; ++i) {
    BF_CHECK(
        bed.deploy_blastfunction("sobel-" + std::to_string(i), sobel).ok());
  }
  // Warm every tenant so the boards are actually programmed.
  for (int i = 1; i <= 6; ++i) {
    auto instance = bed.gateway().instance("sobel-" + std::to_string(i));
    BF_CHECK(instance != nullptr);
    BF_CHECK(instance->invoke().ok());
  }
  std::printf("  before: pods=%zu, assignments=%zu\n",
              bed.cluster().pod_count(), bed.registry().assignment_count());
  for (const char* node : testbed::Testbed::kNodeNames) {
    auto bitstream = bed.board(node).bitstream();
    std::printf("    node %s: accelerator=%s tenants=%zu\n", node,
                bitstream ? bitstream->accelerator.c_str() : "(none)",
                bed.registry().instances_on_device(bed.board(node).id())
                    .size());
  }

  // The MM function arrives: some board must be drained and reprogrammed.
  BF_CHECK(bed.deploy_blastfunction("mm-1", mm).ok());
  auto mm_instance = bed.gateway().instance("mm-1");
  BF_CHECK(mm_instance != nullptr);
  BF_CHECK(mm_instance->invoke().ok());  // triggers the actual programming

  std::printf("  after MM deployment:\n");
  std::size_t migrated = 0;
  for (const cluster::Pod& pod : bed.cluster().list_pods()) {
    if (cluster::migration_generation(pod.spec.name) > 1) ++migrated;
  }
  for (const char* node : testbed::Testbed::kNodeNames) {
    auto bitstream = bed.board(node).bitstream();
    std::printf(
        "    node %s: accelerator=%s tenants=%zu reconfigurations=%llu\n",
        node, bitstream ? bitstream->accelerator.c_str() : "(none)",
        bed.registry().instances_on_device(bed.board(node).id()).size(),
        static_cast<unsigned long long>(
            bed.board(node).reconfiguration_count()));
  }
  std::printf("  migrated pods (create-before-delete replacements): %zu\n",
              migrated);
  auto mm_device = bed.registry().device_of_instance("mm-1-0");
  std::printf("  mm-1 allocated to: %s\n",
              mm_device ? mm_device->c_str() : "(none)");
  return 0;
}
