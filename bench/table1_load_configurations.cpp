// Table I: the load configurations (requests per second sent to each
// function for each benchmark). The native scenario uses only the first
// three columns (one function per board).
#include <cstdio>

#include "experiment.h"

int main() {
  using namespace bf::bench;
  std::printf("Table I: test configurations (rq/s per function)\n");
  std::printf("%-9s | %-12s | %5s | %5s | %5s | %5s | %5s\n", "Use-Case",
              "Configuration", "1st", "2nd", "3rd", "4th", "5th");
  std::printf("%s\n", std::string(66, '-').c_str());
  auto print = [](const char* use_case, const std::vector<LoadConfig>& set) {
    for (const LoadConfig& config : set) {
      std::printf("%-9s | %-12s", use_case, config.name.c_str());
      for (double rate : config.rates) std::printf(" | %3.0f  ", rate);
      std::printf("\n");
    }
  };
  print("Sobel", sobel_configs());
  print("MM", mm_configs());
  print("AlexNet", alexnet_configs());
  return 0;
}
