// Figure 4(a): Round-Trip Time of a write-then-read pair versus total
// transferred size (1 KB .. 2 GB), for Native, BlastFunction (gRPC data
// path) and BlastFunction shm.
//
// Paper shape to reproduce: the gRPC path is ~4x Native at the large end
// (protobuf + 3 extra copies); the shm path tracks Native with a single-copy
// overhead (~155 ms at 2 GB) plus the ~2 ms control floor.
#include <cstdio>
#include <vector>

#include "experiment.h"

namespace bf::bench {
namespace {

// RTT of one blocking write + blocking read of `half` bytes each.
double rw_rtt_ms(OverheadRig& rig, std::uint64_t half, int reps) {
  ocl::Session session("fig4a");
  auto devices = rig.runtime().devices();
  BF_CHECK(devices.ok());
  auto context = rig.runtime().create_context(devices.value()[0].id, session);
  BF_CHECK(context.ok());
  BF_CHECK(context.value()->program(sim::BitstreamLibrary::kVadd).ok());
  auto buffer = context.value()->create_buffer(half);
  BF_CHECK(buffer.ok());
  auto queue = context.value()->create_queue();
  BF_CHECK(queue.ok());

  Bytes payload(half, 0xA5);
  Bytes read_back(half);
  // Warm call (first-touch costs), then measured repetitions; the paper
  // averages 40 runs with 200 ms idle gaps — the simulation is
  // deterministic, so a handful suffices.
  double total_ms = 0.0;
  for (int i = 0; i <= reps; ++i) {
    const vt::Time before = session.now();
    BF_CHECK(queue.value()
                 ->enqueue_write(buffer.value(), 0, ByteSpan{payload}, true)
                 .ok());
    BF_CHECK(queue.value()
                 ->enqueue_read(buffer.value(), 0, MutableByteSpan{read_back},
                                true)
                 .ok());
    if (i > 0) total_ms += (session.now() - before).ms();
    session.compute(vt::Duration::millis(200));  // paper's inter-call gap
  }
  return total_ms / reps;
}

}  // namespace
}  // namespace bf::bench

int main() {
  using namespace bf;
  using namespace bf::bench;

  const std::uint64_t max_total = fig_smoke() ? 4 * kMiB : 2 * kGiB;
  std::vector<std::uint64_t> totals;
  for (std::uint64_t total = kKiB; total <= max_total; total *= 4) {
    totals.push_back(total);
  }
  if (!fig_smoke()) totals.push_back(2 * kGiB);

  std::printf("Figure 4(a): R/W round-trip latency vs total size\n");
  std::printf("%-8s | %12s | %16s | %18s | %8s | %9s\n", "size",
              "Native (ms)", "BlastFunction(ms)", "BlastFunction shm",
              "grpc/nat", "shm - nat");
  std::printf("%s\n", std::string(88, '-').c_str());

  double last_ratio = 0.0;
  double last_shm_delta = 0.0;
  for (std::uint64_t total : totals) {
    const std::uint64_t half = total / 2;
    if (half == 0) continue;
    const int reps = total >= 256 * kMiB ? 2 : 4;
    OverheadRig native(DataPath::kNative);
    OverheadRig grpc(DataPath::kGrpc);
    OverheadRig shm(DataPath::kShm);
    const double native_ms = rw_rtt_ms(native, half, reps);
    const double grpc_ms = rw_rtt_ms(grpc, half, reps);
    const double shm_ms = rw_rtt_ms(shm, half, reps);
    last_ratio = grpc_ms / native_ms;
    last_shm_delta = shm_ms - native_ms;
    std::printf("%-8s | %12.3f | %16.3f | %18.3f | %7.2fx | %6.1f ms\n",
                human_size(total).c_str(), native_ms, grpc_ms, shm_ms,
                last_ratio, last_shm_delta);
  }

  std::printf("\nShape checks vs paper:\n");
  std::printf("  gRPC/Native at 2GB  : %.2fx   (paper: ~4x)\n", last_ratio);
  std::printf("  shm overhead at 2GB : %.1f ms (paper: ~155 ms)\n",
              last_shm_delta);
  return 0;
}
