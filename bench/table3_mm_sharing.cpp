// Table III: multi-function MM aggregate results (5 BlastFunction functions
// vs 3 Native), Table I rates.
//
// Paper shape: BlastFunction stays within ~1% of the target in every
// configuration while Native diverges under load (up to ~40% at high load,
// its per-request runtime overhead dominating the short compute); latencies
// are roughly halved under BlastFunction.
#include <cstdio>
#include <vector>

#include "experiment.h"

int main() {
  using namespace bf;
  using namespace bf::bench;

  auto factory = [] { return std::make_unique<workloads::MatMulWorkload>(); };

  SharingOptions options;
  // Sequential pre-warm pins the tenants' gate-registration order, making
  // the high-load cells run-to-run deterministic (docs/SCHEDULING.md).
  options.prewarm = true;

  std::vector<ScenarioResult> cells;
  for (bool blastfunction : {true, false}) {
    for (const LoadConfig& config : mm_configs()) {
      cells.push_back(
          run_sharing_cell(blastfunction, "mm", factory, config, options));
    }
  }

  std::printf("Table III: multi-function MM (aggregate results)\n");
  print_aggregate_table(cells);

  std::printf("\nTarget-vs-processed gap (paper: BF 0.04%%/0.05%%/1.22%%, "
              "Native 3.97%%/15.19%%/39.97%%):\n");
  for (const ScenarioResult& cell : cells) {
    const double gap =
        100.0 *
        (cell.aggregate_target_rps - cell.aggregate_processed_rps) /
        cell.aggregate_target_rps;
    std::printf("  %-14s %-12s: %6.2f%%\n", cell.scenario.c_str(),
                cell.configuration.c_str(), gap);
  }
  return 0;
}
