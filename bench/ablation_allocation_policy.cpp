// Ablation: Registry allocation policy (paper Algorithm 1, §III-C).
//
// The paper sorts candidate devices "by metrics and by accelerator
// compatibility", with the metrics priority "chosen depending on the system
// and applications SLA". This ablation runs the Table II medium-load Sobel
// scenario under three policies and shows why least-loaded-first spreading
// is the right default:
//   spread  — ascending (utilization, connected)   [the paper's choice]
//   pack    — descending: pile tenants on one board until the filter trips
//   connfirst — ascending (connected, utilization)
#include <cstdio>
#include <map>

#include "experiment.h"

namespace bf::bench {
namespace {

struct PolicyOutcome {
  std::string name;
  double latency_ms = 0.0;
  double processed = 0.0;
  double target = 0.0;
  std::map<std::string, int> tenants_per_node;
};

PolicyOutcome run_policy(const std::string& name,
                         const registry::AllocationPolicy& policy) {
  testbed::TestbedOptions options;
  options.policy = policy;
  testbed::Testbed bed(options);
  auto factory = [] { return std::make_unique<workloads::SobelWorkload>(); };
  const LoadConfig load = sobel_configs()[1];  // medium
  for (std::size_t i = 0; i < load.rates.size(); ++i) {
    BF_CHECK(bed.deploy_blastfunction("sobel-" + std::to_string(i + 1),
                                      factory)
                 .ok());
  }
  PolicyOutcome out;
  out.name = name;
  for (std::size_t i = 0; i < load.rates.size(); ++i) {
    auto instance =
        bed.gateway().instance("sobel-" + std::to_string(i + 1));
    BF_CHECK(instance != nullptr);
    ++out.tenants_per_node[instance->pod().spec.node];
  }
  std::vector<loadgen::DriveSpec> specs;
  for (std::size_t i = 0; i < load.rates.size(); ++i) {
    loadgen::DriveSpec spec;
    spec.function = "sobel-" + std::to_string(i + 1);
    spec.target_rps = load.rates[i];
    spec.warmup = vt::Duration::seconds(4);
    spec.duration = vt::Duration::seconds(15);
    specs.push_back(spec);
  }
  auto results = loadgen::drive_all(bed.gateway(), specs);
  double weighted = 0.0;
  double count = 0.0;
  for (const auto& r : results) {
    out.processed += r.processed_rps;
    out.target += r.target_rps;
    weighted += (r.latency_ms.empty() ? 0.0 : r.latency_ms.mean()) *
                static_cast<double>(r.ok);
    count += static_cast<double>(r.ok);
  }
  out.latency_ms = count > 0 ? weighted / count : 0.0;

  // Registry invariants must hold regardless of policy: every assignment
  // names a running pod on a registered device, and the per-device view
  // agrees with the assignment map (see docs/ALLOCATION.md).
  const auto assignments = bed.registry().assignments();
  BF_CHECK(assignments.size() == bed.registry().assignment_count());
  std::size_t indexed = 0;
  for (const registry::DeviceRecord& record : bed.registry().devices()) {
    for (const std::string& instance :
         bed.registry().instances_on_device(record.id)) {
      ++indexed;
      BF_CHECK(assignments.contains(instance) &&
               assignments.at(instance) == record.id);
    }
  }
  BF_CHECK(indexed == assignments.size());
  for (const auto& [instance, device] : assignments) {
    auto pod = bed.cluster().get_pod(instance);
    BF_CHECK(pod.has_value() &&
             pod->phase == cluster::PodPhase::kRunning);
    (void)device;
  }
  return out;
}

}  // namespace
}  // namespace bf::bench

int main() {
  using namespace bf;
  using namespace bf::bench;

  registry::AllocationPolicy spread;  // defaults

  registry::AllocationPolicy pack = spread;
  pack.pack_tenants = true;

  registry::AllocationPolicy connfirst = spread;
  connfirst.metrics_order = {registry::MetricKey::kConnectedInstances,
                             registry::MetricKey::kUtilization};

  std::printf("Ablation: allocation policy (Sobel, medium load, 5 tenants)\n");
  std::printf("%-10s | %-14s | %10s | %16s\n", "policy", "tenants A/B/C",
              "latency", "processed/target");
  std::printf("%s\n", std::string(62, '-').c_str());
  for (const auto& [name, policy] :
       std::vector<std::pair<std::string, registry::AllocationPolicy>>{
           {"spread", spread}, {"connfirst", connfirst}, {"pack", pack}}) {
    PolicyOutcome outcome = run_policy(name, policy);
    std::printf("%-10s | %5d/%d/%d      | %7.2f ms | %6.1f / %5.0f rq/s\n",
                outcome.name.c_str(), outcome.tenants_per_node["A"],
                outcome.tenants_per_node["B"], outcome.tenants_per_node["C"],
                outcome.latency_ms, outcome.processed, outcome.target);
  }
  std::printf("\nPacking concentrates tenants on one board: higher queueing "
              "latency and lost throughput versus the paper's spread "
              "policy.\n");
  return 0;
}
