#!/usr/bin/env bash
# Builds Release and records the core micro-benchmarks to BENCH_CORE.json at
# the repo root (committed, so perf regressions show up in review diffs),
# then smoke-runs the figure sweeps at small sizes as an end-to-end check of
# every data path.
#
# Usage: bench/run_benchmarks.sh [build-dir]   (default: build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

echo "=== configure + build ($build) ==="
cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j"$(nproc)" --target \
  microbench_core fig4a_rw_overhead fig4b_sobel_overhead fig4c_mm_overhead

echo "=== microbench_core -> BENCH_CORE.json ==="
"$build/bench/microbench_core" \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out="$repo/BENCH_CORE.json"

echo "=== figure smoke runs (BF_FIG_SMOKE=1) ==="
for fig in fig4a_rw_overhead fig4b_sobel_overhead fig4c_mm_overhead; do
  echo "--- $fig ---"
  BF_FIG_SMOKE=1 "$build/bench/$fig"
done

echo "Wrote $repo/BENCH_CORE.json"
