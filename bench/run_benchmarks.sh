#!/usr/bin/env bash
# Builds Release and records the core micro-benchmarks to BENCH_CORE.json at
# the repo root (committed, so perf regressions show up in review diffs),
# then smoke-runs the figure sweeps at small sizes as an end-to-end check of
# every data path.
#
# Usage: bench/run_benchmarks.sh [build-dir]   (default: build)
set -euo pipefail

repo="$(cd "$(dirname "$0")/.." && pwd)"
build="${1:-$repo/build}"

echo "=== configure + build ($build) ==="
cmake -S "$repo" -B "$build" -DCMAKE_BUILD_TYPE=Release
cmake --build "$build" -j"$(nproc)" --target \
  microbench_core hotpath_cpu \
  fig4a_rw_overhead fig4b_sobel_overhead fig4c_mm_overhead

echo "=== microbench_core -> BENCH_CORE.json ==="
"$build/bench/microbench_core" \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out="$repo/BENCH_CORE.json"

echo "=== hotpath_cpu (allocs/copies/CPU per request) ==="
"$build/bench/hotpath_cpu" \
  --benchmark_format=console \
  --benchmark_out_format=json \
  --benchmark_out="$build/hotpath_cpu.json"

# Merge the hot-path benchmarks into BENCH_CORE.json so the per-request
# allocation counters are committed alongside the core series.
python3 - "$repo/BENCH_CORE.json" "$build/hotpath_cpu.json" <<'PY'
import json, sys
core_path, hot_path = sys.argv[1], sys.argv[2]
with open(core_path) as f:
    core = json.load(f)
with open(hot_path) as f:
    hot = json.load(f)
core["benchmarks"].extend(hot["benchmarks"])
# Pre-arena baseline (captured at the PR-6 tree) kept alongside the live
# numbers so the allocations-per-request reduction stays visible in diffs.
core["hotpath_pre_arena_baseline"] = {
    "BM_Hotpath_Fig4bSobel_Grpc": {"allocs_per_req": 92.68, "alloc_kb_per_req": 4101.1, "cpu_us_per_req": 375.4},
    "BM_Hotpath_Fig4bSobel_Shm": {"allocs_per_req": 90.68, "alloc_kb_per_req": 5.17, "cpu_us_per_req": 191.0},
    "BM_Hotpath_Table3MM_Grpc": {"allocs_per_req": 115.29, "alloc_kb_per_req": 4710.3, "cpu_us_per_req": 889.5},
    "BM_Hotpath_Table3MM_Shm": {"allocs_per_req": 112.29, "alloc_kb_per_req": 6.42, "cpu_us_per_req": 275.6},
}
with open(core_path, "w") as f:
    json.dump(core, f, indent=2)
    f.write("\n")
PY

echo "=== figure smoke runs (BF_FIG_SMOKE=1) ==="
for fig in fig4a_rw_overhead fig4b_sobel_overhead fig4c_mm_overhead; do
  echo "--- $fig ---"
  BF_FIG_SMOKE=1 "$build/bench/$fig"
done

echo "Wrote $repo/BENCH_CORE.json"
