// Shared machinery for the paper-reproduction benchmarks (Tables I-IV,
// Figure 4). Header-only: every bench binary is a standalone main.
#pragma once

#include <cstdio>
#include <cstdlib>
#include <memory>
#include <string>
#include <vector>

#include "devmgr/device_manager.h"
#include "loadgen/loadgen.h"
#include "native/native_runtime.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/bitstream.h"
#include "sim/board.h"
#include "testbed/testbed.h"
#include "workloads/alexnet.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

namespace bf::bench {

// Set BF_FIG_SMOKE=1 to cap the figure sweeps at small sizes. Used by the
// perf-smoke ctest label so CI exercises every data path in seconds; the
// per-point numbers are identical to a full run (the sweep is just shorter).
inline bool fig_smoke() {
  const char* env = std::getenv("BF_FIG_SMOKE");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

// ---- Paper Table I: load configurations (rq/s per function) -----------------

struct LoadConfig {
  std::string name;           // "Low load" / ...
  std::vector<double> rates;  // per function; native uses the first 3
};

inline std::vector<LoadConfig> sobel_configs() {
  return {{"Low Load", {20, 15, 10, 5, 5}},
          {"Medium Load", {35, 30, 25, 20, 15}},
          {"High Load", {60, 50, 35, 30, 15}}};
}

inline std::vector<LoadConfig> mm_configs() {
  return {{"Low Load", {28, 21, 14, 7, 7}},
          {"Medium Load", {49, 42, 35, 28, 21}},
          {"High Load", {84, 70, 49, 42, 21}}};
}

inline std::vector<LoadConfig> alexnet_configs() {
  return {{"Medium Load", {6, 3, 3, 3, 3}},
          {"High Load", {9, 9, 6, 6, 3}}};
}

// ---- Multi-function sharing experiment (Tables II-IV) ------------------------

struct FunctionRow {
  std::string function;
  std::string node;
  double utilization_pct = 0.0;  // per-function device busy share
  double latency_ms = 0.0;
  double latency_p99_ms = 0.0;
  double processed_rps = 0.0;
  double target_rps = 0.0;
};

struct ScenarioResult {
  std::string scenario;  // "BlastFunction" / "Native"
  std::string configuration;
  std::vector<FunctionRow> rows;
  double aggregate_utilization_pct = 0.0;  // max 300% (3 boards)
  double aggregate_latency_ms = 0.0;       // request-weighted mean
  double aggregate_latency_p99_ms = 0.0;   // p99 over all measured requests
  double aggregate_processed_rps = 0.0;
  double aggregate_target_rps = 0.0;
};

struct SharingOptions {
  vt::Duration warmup = vt::Duration::seconds(4);
  vt::Duration duration = vt::Duration::seconds(20);
  // Native functions that must keep a warm process (PipeCNN: weights).
  faas::ExecutionMode native_mode = faas::ExecutionMode::kForkPerRequest;
  // Testbed knobs for the cell (scheduler policy, call options, ...).
  testbed::TestbedOptions testbed{};
  // Cold-start every function sequentially (deployment order) before the
  // drivers go concurrent. This makes every tenant's device-manager session
  // and gate registration exist up front, so cross-tenant ordering of
  // equal-stamp tasks never depends on which driver thread connected first —
  // the table3/4 run-to-run flakiness fix. Off by default: the lazy
  // cold-start timeline of table1/2 and the figures is part of their golden
  // output.
  bool prewarm = false;
};

// Runs one (scenario, configuration) cell: deploys `prefix-1..N` functions,
// drives them closed-loop at the configured rates, reports per-function and
// aggregate rows.
inline ScenarioResult run_sharing_cell(bool blastfunction,
                                       const std::string& prefix,
                                       const workloads::WorkloadFactory& make,
                                       const LoadConfig& config,
                                       const SharingOptions& options = {}) {
  testbed::Testbed bed(options.testbed);

  const std::size_t count = blastfunction ? config.rates.size() : 3;
  for (std::size_t i = 0; i < count; ++i) {
    const std::string name = prefix + "-" + std::to_string(i + 1);
    Status deployed =
        blastfunction
            ? bed.deploy_blastfunction(name, make)
            : bed.deploy_native(name, make,
                                testbed::Testbed::kNodeNames[i],
                                options.native_mode);
    BF_CHECK(deployed.ok());
  }
  if (options.prewarm) {
    for (std::size_t i = 0; i < count; ++i) {
      const std::string name = prefix + "-" + std::to_string(i + 1);
      BF_CHECK(bed.gateway().warm(name).ok());
    }
  }

  std::vector<loadgen::DriveSpec> specs;
  for (std::size_t i = 0; i < count; ++i) {
    loadgen::DriveSpec spec;
    spec.function = prefix + "-" + std::to_string(i + 1);
    spec.target_rps = config.rates[i];
    spec.warmup = options.warmup;
    spec.duration = options.duration;
    specs.push_back(spec);
  }
  auto results = loadgen::drive_all(bed.gateway(), specs);

  ScenarioResult out;
  out.scenario = blastfunction ? "BlastFunction" : "Native";
  out.configuration = config.name;

  // Measurement window, derived from the drivers themselves: prewarm (or any
  // future per-driver clock offset) shifts each driver's window, and the
  // utilization numbers must cover exactly the span every driver measured.
  // Without prewarm each driver starts at t=0, so this reduces to the
  // historical [warmup, warmup + duration) window bit-for-bit.
  vt::Time from = vt::Time::zero() + options.warmup;
  vt::Time to = from + options.duration;
  if (!results.empty()) {
    from = results.front().measure_start;
    to = results.front().horizon;
    for (const auto& r : results) {
      from = vt::max(from, r.measure_start);
      to = to < r.horizon ? to : r.horizon;
    }
  }
  double weighted_latency = 0.0;
  double total_ok = 0.0;
  SampleStats all_latency;
  for (std::size_t i = 0; i < results.size(); ++i) {
    const auto& r = results[i];
    FunctionRow row;
    row.function = r.function;
    row.node = r.node;
    row.latency_ms = r.latency_ms.empty() ? 0.0 : r.latency_ms.mean();
    row.latency_p99_ms =
        r.latency_ms.empty() ? 0.0 : r.latency_ms.percentile(0.99);
    all_latency.merge(r.latency_ms);
    row.processed_rps = r.processed_rps;
    row.target_rps = r.target_rps;
    if (blastfunction) {
      // Device busy attributable to this function's pod.
      const std::string pod = r.function + "-0";
      double busy_sec = 0.0;
      for (const char* node : testbed::Testbed::kNodeNames) {
        busy_sec += bed.manager(node).client_busy_between(pod, from, to).sec();
      }
      row.utilization_pct = 100.0 * busy_sec / (to - from).sec();
    } else {
      // Native: one function per board; board busy == function busy.
      row.utilization_pct = bed.node_utilization_pct(r.node, from, to);
    }
    weighted_latency += row.latency_ms * static_cast<double>(r.ok);
    total_ok += static_cast<double>(r.ok);
    out.aggregate_processed_rps += row.processed_rps;
    out.aggregate_target_rps += row.target_rps;
    out.rows.push_back(std::move(row));
  }
  out.aggregate_utilization_pct = bed.aggregate_utilization_pct(from, to);
  out.aggregate_latency_ms = total_ok > 0 ? weighted_latency / total_ok : 0.0;
  out.aggregate_latency_p99_ms =
      all_latency.empty() ? 0.0 : all_latency.percentile(0.99);
  return out;
}

inline void print_per_function_table(const std::vector<ScenarioResult>& cells) {
  std::printf(
      "%-14s | %-12s | %-9s | %-4s | %7s | %9s | %10s | %10s\n", "Type",
      "Configuration", "Function", "Node", "Util.", "Latency", "Processed",
      "Target");
  std::printf("%s\n", std::string(96, '-').c_str());
  for (const ScenarioResult& cell : cells) {
    for (const FunctionRow& row : cell.rows) {
      std::printf(
          "%-14s | %-12s | %-9s | %-4s | %5.2f%% | %6.2f ms | %5.2f rq/s | "
          "%5.2f rq/s\n",
          cell.scenario.c_str(), cell.configuration.c_str(),
          row.function.c_str(), row.node.c_str(), row.utilization_pct,
          row.latency_ms, row.processed_rps, row.target_rps);
    }
  }
}

inline void print_aggregate_table(const std::vector<ScenarioResult>& cells) {
  std::printf("%-14s | %-12s | %11s | %9s | %11s | %10s\n", "Type",
              "Configuration", "Utilization", "Latency", "Processed",
              "Target");
  std::printf("%s\n", std::string(84, '-').c_str());
  for (const ScenarioResult& cell : cells) {
    std::printf(
        "%-14s | %-12s | %9.2f%% | %6.2f ms | %6.2f rq/s | %5.0f rq/s\n",
        cell.scenario.c_str(), cell.configuration.c_str(),
        cell.aggregate_utilization_pct, cell.aggregate_latency_ms,
        cell.aggregate_processed_rps, cell.aggregate_target_rps);
  }
}

// ---- Single-node overhead rigs (Figure 4) -------------------------------------

enum class DataPath { kNative, kGrpc, kShm };

inline const char* to_string(DataPath path) {
  switch (path) {
    case DataPath::kNative: return "Native";
    case DataPath::kGrpc: return "BlastFunction";
    case DataPath::kShm: return "BlastFunction shm";
  }
  return "?";
}

// One board on worker node B plus (for the remote paths) a Device Manager,
// mirroring the paper's single-node overhead setup (§IV-A).
class OverheadRig {
 public:
  explicit OverheadRig(DataPath path, bool functional = false) : path_(path) {
    sim::BoardConfig bc;
    bc.id = "fpga-b";
    bc.node = "B";
    bc.host = sim::make_node_b();
    bc.functional = functional;
    board_ = std::make_unique<sim::Board>(bc);
    if (path == DataPath::kNative) {
      runtime_ = std::make_unique<native::NativeRuntime>(
          std::vector<sim::Board*>{board_.get()});
      return;
    }
    devmgr::DeviceManagerConfig mc;
    mc.id = "devmgr-b";
    mc.allow_shared_memory = path == DataPath::kShm;
    manager_ = std::make_unique<devmgr::DeviceManager>(
        mc, board_.get(), path == DataPath::kShm ? &shm_ : nullptr);
    remote::ManagerAddress address;
    address.endpoint = &manager_->endpoint();
    address.transport = path == DataPath::kShm ? net::local_control(bc.host)
                                               : net::local_grpc(bc.host);
    address.node_shm = path == DataPath::kShm ? &shm_ : nullptr;
    address.prefer_shared_memory = path == DataPath::kShm;
    runtime_ = std::make_unique<remote::RemoteRuntime>(
        std::vector<remote::ManagerAddress>{address});
  }

  [[nodiscard]] ocl::Runtime& runtime() { return *runtime_; }
  [[nodiscard]] sim::Board& board() { return *board_; }
  [[nodiscard]] DataPath path() const { return path_; }

 private:
  DataPath path_;
  shm::Namespace shm_;
  std::unique_ptr<sim::Board> board_;
  std::unique_ptr<devmgr::DeviceManager> manager_;
  std::unique_ptr<ocl::Runtime> runtime_;
};

inline std::string human_size(std::uint64_t bytes) {
  char buf[32];
  if (bytes >= kGiB) {
    std::snprintf(buf, sizeof(buf), "%.0fGB", double(bytes) / double(kGiB));
  } else if (bytes >= kMiB) {
    std::snprintf(buf, sizeof(buf), "%.0fMB", double(bytes) / double(kMiB));
  } else {
    std::snprintf(buf, sizeof(buf), "%.0fKB", double(bytes) / double(kKiB));
  }
  return buf;
}

}  // namespace bf::bench
