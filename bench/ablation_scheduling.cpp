// Scheduling-policy ablation: the Device Manager's central queue run as
// modeled FIFO (the paper's design) vs the three alternative policies behind
// the Scheduler interface (docs/SCHEDULING.md) — per-tenant weighted fair
// queueing, deadline-aware EDF, and same-kernel batching.
//
// Setup: twelve MM tenants share the testbed's three boards (four per
// board), driven closed-loop at equal per-function rates. Low load leaves
// the boards mostly idle, Medium approaches saturation, High oversubscribes
// them — the regime where Table III shows the central queue becoming the
// bottleneck and where a policy can actually buy throughput back. Batching
// amortizes the fixed per-launch overhead across tenants stuck behind the
// same kernel, so it is the expected High-load winner; WFQ/EDF reshape *who*
// waits, not how much total work the board does.
//
// Batching runs pairwise (max_batch = 2): a batch completes all of its
// requests together, so wide batches turn the tenants' staggered closed-loop
// arrivals into synchronized ones and the board idles while every client
// seals its next request at once. With four backlogged tenants per board,
// pairs keep at least two other tenants queued across every pass boundary —
// the launch-overhead saving without the de-pipelining loss.
#include <cstdio>
#include <string>
#include <vector>

#include "experiment.h"

namespace {

using namespace bf;
using namespace bf::bench;

constexpr std::size_t kTenants = 12;

std::vector<LoadConfig> ablation_configs() {
  return {{"Low Load", std::vector<double>(kTenants, 15.0)},
          {"Medium Load", std::vector<double>(kTenants, 40.0)},
          {"High Load", std::vector<double>(kTenants, 60.0)}};
}

SharingOptions options_for(devmgr::SchedulerPolicy policy,
                           const LoadConfig& config) {
  SharingOptions options;
  options.prewarm = true;  // deterministic gate-registration order
  options.testbed.scheduler.policy = policy;
  if (policy == devmgr::SchedulerPolicy::kWeightedFair) {
    // Weights proportional to the tenants' target rates, keyed by pod name.
    for (std::size_t i = 0; i < config.rates.size(); ++i) {
      const std::string pod = "mm-" + std::to_string(i + 1) + "-0";
      options.testbed.scheduler.weights[pod] = config.rates[i];
    }
  }
  if (policy == devmgr::SchedulerPolicy::kBatching) {
    options.testbed.scheduler.max_batch = 2;  // see header comment
  }
  if (policy == devmgr::SchedulerPolicy::kDeadline) {
    // A client-side timeout gives every call a deadline for EDF to order by.
    // 5 s is far above any modeled latency (including the ~2.4 s cold-start
    // reconfiguration), so nothing actually times out.
    options.testbed.call_options.timeout = vt::Duration::seconds(5);
  }
  return options;
}

}  // namespace

int main() {
  auto factory = [] { return std::make_unique<workloads::MatMulWorkload>(); };

  const std::vector<devmgr::SchedulerPolicy> policies = {
      devmgr::SchedulerPolicy::kFifo, devmgr::SchedulerPolicy::kWeightedFair,
      devmgr::SchedulerPolicy::kDeadline, devmgr::SchedulerPolicy::kBatching};

  std::printf("Scheduling ablation: 12 MM tenants, 3 boards, closed-loop\n");
  std::printf("%-12s | %-8s | %11s | %9s | %9s | %11s | %8s\n",
              "Configuration", "Policy", "Utilization", "Latency", "p99",
              "Processed", "of tgt");
  std::printf("%s\n", std::string(86, '-').c_str());

  // fifo/wfq/edf/batch results per load level, for the win-condition check.
  std::vector<std::vector<ScenarioResult>> by_load;
  for (const LoadConfig& config : ablation_configs()) {
    std::vector<ScenarioResult> row;
    for (devmgr::SchedulerPolicy policy : policies) {
      ScenarioResult cell = run_sharing_cell(
          /*blastfunction=*/true, "mm", factory, config,
          options_for(policy, config));
      std::printf(
          "%-12s | %-8s | %9.2f%% | %6.2f ms | %6.2f ms | %6.2f rq/s | "
          "%6.2f%%\n",
          config.name.c_str(),
          std::string(devmgr::to_string(policy)).c_str(),
          cell.aggregate_utilization_pct, cell.aggregate_latency_ms,
          cell.aggregate_latency_p99_ms, cell.aggregate_processed_rps,
          100.0 * cell.aggregate_processed_rps / cell.aggregate_target_rps);
      row.push_back(std::move(cell));
    }
    by_load.push_back(std::move(row));
  }

  // Win condition (ISSUE 8): at High load, at least one non-FIFO policy must
  // process a larger share of the target without blowing up tail latency
  // (p99 <= 1.5x FIFO's).
  const std::vector<ScenarioResult>& high = by_load.back();
  const ScenarioResult& fifo = high.front();
  const double fifo_share =
      fifo.aggregate_processed_rps / fifo.aggregate_target_rps;
  bool win = false;
  std::printf("\nHigh-load win check vs fifo (%.2f%% of target, p99 %.2f ms):\n",
              100.0 * fifo_share, fifo.aggregate_latency_p99_ms);
  for (std::size_t i = 1; i < high.size(); ++i) {
    const ScenarioResult& cell = high[i];
    const double share =
        cell.aggregate_processed_rps / cell.aggregate_target_rps;
    const bool higher_share = share > fifo_share;
    const bool tail_ok = cell.aggregate_latency_p99_ms <=
                         1.5 * fifo.aggregate_latency_p99_ms;
    std::printf("  %-6s: %6.2f%% of target, p99 %6.2f ms -> %s\n",
                std::string(devmgr::to_string(policies[i])).c_str(),
                100.0 * share, cell.aggregate_latency_p99_ms,
                higher_share && tail_ok ? "WIN" : "no win");
    win = win || (higher_share && tail_ok);
  }
  std::printf("%s\n", win ? "ABLATION WIN CONDITION MET"
                          : "ABLATION WIN CONDITION NOT MET");
  return win ? 0 : 1;
}
