// Ablation: space-sharing (paper §V future work) vs the evaluated
// time-sharing-only design.
//
// Scenario: a mixed fleet — 3 Sobel functions and 2 MM functions — on the
// three-board cluster under medium load. In classic mode the Registry must
// give MM its own boards (different accelerators cannot time-share a
// full-device image); with 2 PR regions per board, Sobel and MM co-reside
// and the mixed fleet spreads freely.
#include <cstdio>

#include "experiment.h"

namespace bf::bench {
namespace {

struct Outcome {
  std::string label;
  double latency_ms = 0.0;
  double processed = 0.0;
  double target = 0.0;
  std::size_t migrations = 0;
  std::map<std::string, std::size_t> tenants_per_board;
};

Outcome run_mixed(unsigned pr_regions) {
  testbed::TestbedOptions options;
  options.pr_regions = pr_regions;
  testbed::Testbed bed(options);

  auto sobel = [] { return std::make_unique<workloads::SobelWorkload>(); };
  auto mm = [] { return std::make_unique<workloads::MatMulWorkload>(); };

  // Phase 1: a Sobel tenant on every board, warmed so the boards actually
  // carry the sobel image when MM arrives.
  const double sobel_rates[3] = {40, 35, 30};
  for (int i = 1; i <= 3; ++i) {
    BF_CHECK(bed.deploy_blastfunction("sobel-" + std::to_string(i), sobel)
                 .ok());
  }
  for (int i = 1; i <= 3; ++i) {
    auto instance = bed.gateway().instance("sobel-" + std::to_string(i));
    BF_CHECK(instance->invoke().ok());
  }

  // Phase 2: two MM functions arrive. Classic mode must drain a board
  // (migrating its Sobel tenant); PR mode slots MM into free regions.
  BF_CHECK(bed.deploy_blastfunction("mm-1", mm).ok());
  BF_CHECK(bed.deploy_blastfunction("mm-2", mm).ok());

  Outcome out;
  out.label = pr_regions == 1 ? "time-sharing only"
                              : std::to_string(pr_regions) + " PR regions";
  std::vector<std::string> live_names;
  for (const cluster::Pod& pod : bed.cluster().list_pods()) {
    if (cluster::migration_generation(pod.spec.name) > 1) ++out.migrations;
    live_names.push_back(pod.spec.name);
  }
  for (const std::string& pod : live_names) {
    auto device = bed.registry().device_of_instance(pod);
    if (device) ++out.tenants_per_board[*device];
  }

  std::vector<loadgen::DriveSpec> specs;
  for (const cluster::Pod& pod : bed.cluster().list_pods()) {
    loadgen::DriveSpec spec;
    spec.function = pod.spec.function;
    if (spec.function.starts_with("sobel")) {
      spec.target_rps = sobel_rates[spec.function.back() - '1'];
    } else {
      spec.target_rps = spec.function == "mm-1" ? 40 : 30;
    }
    spec.warmup = vt::Duration::seconds(4);
    spec.duration = vt::Duration::seconds(15);
    specs.push_back(spec);
  }
  auto results = loadgen::drive_all(bed.gateway(), specs);
  double weighted = 0.0;
  double count = 0.0;
  for (const auto& r : results) {
    out.processed += r.processed_rps;
    out.target += r.target_rps;
    weighted += (r.latency_ms.empty() ? 0.0 : r.latency_ms.mean()) *
                static_cast<double>(r.ok);
    count += static_cast<double>(r.ok);
  }
  out.latency_ms = count > 0 ? weighted / count : 0.0;
  return out;
}

}  // namespace
}  // namespace bf::bench

int main() {
  using namespace bf::bench;
  std::printf("Ablation: space-sharing vs time-sharing\n"
              "(3 warmed Sobel tenants, then 2 MM functions arrive)\n");
  std::printf("%-18s | %10s | %17s | %10s | %s\n", "mode", "latency",
              "processed/target", "migrations", "tenants per board");
  std::printf("%s\n", std::string(90, '-').c_str());
  for (unsigned regions : {1u, 2u}) {
    Outcome out = run_mixed(regions);
    std::string spread;
    for (const auto& [board, count] : out.tenants_per_board) {
      spread += board + ":" + std::to_string(count) + " ";
    }
    std::printf("%-18s | %7.2f ms | %6.1f / %6.0f  | %10zu | %s\n",
                out.label.c_str(), out.latency_ms, out.processed, out.target,
                out.migrations, spread.c_str());
  }
  std::printf("\nWith PR regions, Sobel and MM co-reside: the mixed fleet "
              "spreads across all boards without migrations, and kernels of "
              "different regions overlap in time.\n");
  return 0;
}
