// Live reconfiguration and migration (paper §III-C).
//
// Fills all three boards with Sobel tenants, then deploys an MM function.
// Algorithm 1 finds no MM-compatible device, picks a redistributable board,
// migrates its tenants away (Kubernetes create-before-delete) and hands the
// drained board to the new tenant. Watch events are printed live.
//
//   ./example_reconfiguration_migration
#include <cstdio>
#include <memory>

#include "testbed/testbed.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"

using namespace bf;

int main() {
  testbed::Testbed bed;
  bed.cluster().add_watcher([](const cluster::WatchEvent& event) {
    std::printf("  [k8s] %s pod %-12s (function %s, node %s)\n",
                event.type == cluster::WatchEvent::Type::kAdded ? "ADDED  "
                                                                : "DELETED",
                event.pod.spec.name.c_str(), event.pod.spec.function.c_str(),
                event.pod.spec.node.c_str());
  });

  auto sobel = [] { return std::make_unique<workloads::SobelWorkload>(); };
  auto mm = [] { return std::make_unique<workloads::MatMulWorkload>(); };

  std::printf("Phase 1: six Sobel tenants fill the three boards\n");
  for (int i = 1; i <= 6; ++i) {
    BF_CHECK(
        bed.deploy_blastfunction("sobel-" + std::to_string(i), sobel).ok());
  }
  for (int i = 1; i <= 6; ++i) {
    auto instance = bed.gateway().instance("sobel-" + std::to_string(i));
    BF_CHECK(instance->invoke().ok());  // warm: boards get programmed
  }
  for (const char* node : testbed::Testbed::kNodeNames) {
    auto bitstream = bed.board(node).bitstream();
    std::printf("  board %s: %s, %zu tenants\n", bed.board(node).id().c_str(),
                bitstream ? bitstream->accelerator.c_str() : "(blank)",
                bed.registry()
                    .instances_on_device(bed.board(node).id())
                    .size());
  }

  std::printf("\nPhase 2: an MM function arrives — the Registry must drain "
              "and reprogram a board\n");
  Status s = bed.deploy_blastfunction("mm-1", mm);
  if (!s.ok()) {
    std::printf("deploy failed: %s\n", s.to_string().c_str());
    return 1;
  }
  auto mm_instance = bed.gateway().instance("mm-1");
  BF_CHECK(mm_instance != nullptr);
  BF_CHECK(mm_instance->invoke().ok());  // programs the drained board

  std::printf("\nFinal placement:\n");
  for (const char* node : testbed::Testbed::kNodeNames) {
    auto bitstream = bed.board(node).bitstream();
    std::printf("  board %s: %-6s, %zu tenants, %llu reconfigurations\n",
                bed.board(node).id().c_str(),
                bitstream ? bitstream->accelerator.c_str() : "(blank)",
                bed.registry()
                    .instances_on_device(bed.board(node).id())
                    .size(),
                static_cast<unsigned long long>(
                    bed.board(node).reconfiguration_count()));
  }

  std::printf("\nPhase 3: a running tenant requests a different bitstream "
              "via the Registry\n");
  s = bed.registry().request_reconfiguration("mm-1-0",
                                             sim::BitstreamLibrary::kAlexNet);
  std::printf("  request_reconfiguration(mm-1-0 -> pipecnn_alexnet): %s\n",
              s.to_string().c_str());
  return 0;
}
