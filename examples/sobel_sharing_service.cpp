// Sobel edge-detection as a shared serverless service.
//
// Recreates the paper's headline scenario (§IV-B) end-to-end: a three-node
// cluster, five `sobel-*` functions registered with the Accelerators
// Registry, allocated onto three boards by Algorithm 1, and driven by a
// closed-loop load generator. Prints the paper-style per-function table.
//
//   ./example_sobel_sharing_service
#include <cstdio>
#include <memory>

#include "loadgen/loadgen.h"
#include "testbed/testbed.h"
#include "workloads/sobel.h"

using namespace bf;

int main() {
  testbed::Testbed bed;

  std::printf("Deploying 5 Sobel functions over 3 boards...\n");
  auto factory = [] { return std::make_unique<workloads::SobelWorkload>(); };
  for (int i = 1; i <= 5; ++i) {
    const std::string name = "sobel-" + std::to_string(i);
    Status s = bed.deploy_blastfunction(name, factory);
    if (!s.ok()) {
      std::printf("deploy %s failed: %s\n", name.c_str(),
                  s.to_string().c_str());
      return 1;
    }
    auto device = bed.registry().device_of_instance(name + "-0");
    std::printf("  %s -> %s\n", name.c_str(),
                device ? device->c_str() : "(unallocated)");
  }

  std::printf("\nDriving Table I medium load for 10 modeled seconds...\n");
  const double rates[5] = {35, 30, 25, 20, 15};
  std::vector<loadgen::DriveSpec> specs;
  for (int i = 0; i < 5; ++i) {
    loadgen::DriveSpec spec;
    spec.function = "sobel-" + std::to_string(i + 1);
    spec.target_rps = rates[i];
    spec.warmup = vt::Duration::seconds(3);
    spec.duration = vt::Duration::seconds(10);
    specs.push_back(spec);
  }
  auto results = loadgen::drive_all(bed.gateway(), specs);

  std::printf("\n%-9s | %-4s | %9s | %10s | %10s\n", "Function", "Node",
              "Latency", "Processed", "Target");
  std::printf("%s\n", std::string(56, '-').c_str());
  for (const auto& r : results) {
    std::printf("%-9s | %-4s | %6.2f ms | %5.2f rq/s | %5.2f rq/s\n",
                r.function.c_str(), r.node.c_str(),
                r.latency_ms.empty() ? 0.0 : r.latency_ms.mean(),
                r.processed_rps, r.target_rps);
  }

  const vt::Time from = vt::Time::zero() + vt::Duration::seconds(3);
  const vt::Time to = from + vt::Duration::seconds(10);
  std::printf("\nBoard utilization over the measurement window:\n");
  for (const char* node : testbed::Testbed::kNodeNames) {
    std::printf("  node %s (%s): %.1f%%\n", node, bed.board(node).id().c_str(),
                bed.node_utilization_pct(node, from, to));
  }
  std::printf("  aggregate: %.1f%% of 300%%\n",
              bed.aggregate_utilization_pct(from, to));
  return 0;
}
