// Exports a Perfetto/chrome://tracing timeline with full request tracing.
//
// Runs a small two-tenant Sobel scenario with a seeded TraceBuilder
// installed, so every request records parent-linked spans from the gateway
// (request / gateway / handler) through the rpc + Device Manager task
// queue (task = queue-wait + execute, op:*) down to board kernel
// execution, then overlays the boards' per-tenant occupancy tracks and
// writes blastfunction_trace.json — open it in ui.perfetto.dev (or
// chrome://tracing) to follow any request across tracks via flow arrows.
// Also prints one request's critical-path breakdown, whose hop self-times
// sum exactly to the gateway-reported end-to-end latency (docs/TRACING.md).
//
//   ./example_trace_timeline [output.json]
#include <cstdio>
#include <memory>

#include "loadgen/loadgen.h"
#include "testbed/testbed.h"
#include "trace/chrome_trace.h"
#include "workloads/sobel.h"

using namespace bf;

int main(int argc, char** argv) {
  const std::string output =
      argc > 1 ? argv[1] : "blastfunction_trace.json";

  trace::TraceBuilder builder(/*seed=*/42);
  testbed::TestbedOptions options;
  options.trace = &builder;  // must outlive the Testbed
  {
    testbed::Testbed bed(options);
    auto factory = [] {
      return std::make_unique<workloads::SobelWorkload>(256, 256);
    };
    for (int i = 1; i <= 2; ++i) {
      BF_CHECK(bed.deploy_blastfunction("sobel-" + std::to_string(i), factory)
                   .ok());
    }
    std::vector<loadgen::DriveSpec> specs;
    for (int i = 1; i <= 2; ++i) {
      loadgen::DriveSpec spec;
      spec.function = "sobel-" + std::to_string(i);
      spec.target_rps = 10;
      spec.warmup = vt::Duration::seconds(2);
      spec.duration = vt::Duration::seconds(2);
      specs.push_back(spec);
    }
    (void)loadgen::drive_all(bed.gateway(), specs);

    // One more traced request, held onto for the critical-path printout.
    auto result = bed.gateway().invoke("sobel-1");
    if (result.ok()) {
      auto path = builder.critical_path(result.value().trace_id);
      if (path.ok()) {
        std::printf("critical path of one sobel-1 request "
                    "(e2e %.3f ms):\n",
                    result.value().e2e_latency.ms());
        for (const auto& hop : path.value().hops) {
          std::printf("  %-14s %-12s %8.3f ms\n", hop.name.c_str(),
                      hop.track.c_str(), hop.self.ms());
        }
      }
    }

    // Overlay the boards' per-tenant occupancy for the measured window.
    for (const std::string& node : bed.node_names()) {
      builder.add_board_occupancy(bed.manager(node), vt::Time::seconds(2),
                                  vt::Time::seconds(5));
    }
  }  // Testbed teardown uninstalls the sink before `builder` dies.

  Status written = builder.write_file(output);
  if (!written.ok()) {
    std::printf("error: %s\n", written.to_string().c_str());
    return 1;
  }
  std::printf("wrote %zu spans to %s\n", builder.span_count(),
              output.c_str());
  std::printf("open ui.perfetto.dev (or chrome://tracing) and load the file; "
              "request spans link across tracks via flow arrows.\n");
  return 0;
}
