// Exports a chrome://tracing timeline of how tenants time-share the boards.
//
// Runs the Table I low-load Sobel scenario for a few seconds and writes
// blastfunction_trace.json — open it in chrome://tracing or ui.perfetto.dev
// to see every tenant's kernel/transfer occupancy interleaved per board.
//
//   ./example_trace_timeline [output.json]
#include <cstdio>
#include <memory>

#include "loadgen/loadgen.h"
#include "testbed/testbed.h"
#include "trace/chrome_trace.h"
#include "workloads/sobel.h"

using namespace bf;

int main(int argc, char** argv) {
  const std::string output =
      argc > 1 ? argv[1] : "blastfunction_trace.json";

  testbed::Testbed bed;
  auto factory = [] { return std::make_unique<workloads::SobelWorkload>(); };
  const double rates[5] = {20, 15, 10, 5, 5};
  for (int i = 1; i <= 5; ++i) {
    BF_CHECK(
        bed.deploy_blastfunction("sobel-" + std::to_string(i), factory).ok());
  }
  std::vector<loadgen::DriveSpec> specs;
  for (int i = 0; i < 5; ++i) {
    loadgen::DriveSpec spec;
    spec.function = "sobel-" + std::to_string(i + 1);
    spec.target_rps = rates[i];
    spec.warmup = vt::Duration::seconds(2);
    spec.duration = vt::Duration::seconds(3);
    specs.push_back(spec);
  }
  (void)loadgen::drive_all(bed.gateway(), specs);

  // Export the measured window only (skip cold-start programming).
  trace::TraceBuilder builder;
  const vt::Time from = vt::Time::seconds(2);
  const vt::Time to = vt::Time::seconds(5);
  for (const std::string& node : bed.node_names()) {
    builder.add_board_occupancy(bed.manager(node), from, to);
  }
  Status written = builder.write_file(output);
  if (!written.ok()) {
    std::printf("error: %s\n", written.to_string().c_str());
    return 1;
  }
  std::printf("wrote %zu occupancy spans across %zu boards to %s\n",
              builder.span_count(), bed.node_names().size(), output.c_str());
  std::printf("open chrome://tracing (or ui.perfetto.dev) and load the file "
              "to see the tenants interleave.\n");
  return 0;
}
