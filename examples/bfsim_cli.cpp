// bfsim: command-line experiment runner for the BlastFunction testbed.
//
// Deploys N functions of a chosen workload, drives them closed-loop at given
// rates, and prints the paper-style result table. Optionally exports a
// chrome://tracing timeline.
//
// Examples:
//   ./example_bfsim_cli --workload sobel --rates 20,15,10,5,5
//   ./example_bfsim_cli --workload mm --rates 84,70,49,42,21 --duration 20
//   ./example_bfsim_cli --workload sobel --rates 40,30 --scenario native
//   ./example_bfsim_cli --workload mm --rates 30,30 --pr-regions 2
//       --trace timeline.json  (single command line)
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "loadgen/loadgen.h"
#include "testbed/testbed.h"
#include "trace/chrome_trace.h"
#include "workloads/alexnet.h"
#include "workloads/matmul.h"
#include "workloads/sobel.h"
#include "workloads/spector_extra.h"

using namespace bf;

namespace {

struct Options {
  std::string workload = "sobel";
  std::string scenario = "bf";  // bf | native
  std::vector<double> rates = {20, 15, 10, 5, 5};
  double duration_sec = 10;
  double warmup_sec = 4;
  unsigned pr_regions = 1;
  std::string trace_path;
};

void usage(const char* argv0) {
  std::printf(
      "usage: %s [options]\n"
      "  --workload sobel|mm|alexnet|fir|histogram\n"
      "                                benchmark to run (default sobel)\n"
      "  --scenario bf|native          BlastFunction sharing or native\n"
      "                                baseline (default bf)\n"
      "  --rates r1,r2,...             per-function target rq/s\n"
      "                                (native uses at most 3 functions)\n"
      "  --duration SECONDS            measured window (default 10)\n"
      "  --warmup SECONDS              warmup excluded from stats (default 4)\n"
      "  --pr-regions N                space-sharing regions per board\n"
      "  --trace FILE                  write a chrome://tracing timeline\n",
      argv0);
}

std::vector<double> parse_rates(const std::string& arg) {
  std::vector<double> out;
  std::size_t begin = 0;
  while (begin < arg.size()) {
    std::size_t end = arg.find(',', begin);
    if (end == std::string::npos) end = arg.size();
    out.push_back(std::atof(arg.substr(begin, end - begin).c_str()));
    begin = end + 1;
  }
  return out;
}

workloads::WorkloadFactory make_factory(const std::string& name) {
  if (name == "sobel") {
    return [] { return std::make_unique<workloads::SobelWorkload>(); };
  }
  if (name == "mm") {
    return [] { return std::make_unique<workloads::MatMulWorkload>(); };
  }
  if (name == "alexnet") {
    return [] { return std::make_unique<workloads::AlexNetWorkload>(); };
  }
  if (name == "fir") {
    return [] { return std::make_unique<workloads::FirWorkload>(); };
  }
  if (name == "histogram") {
    return [] { return std::make_unique<workloads::HistogramWorkload>(); };
  }
  return nullptr;
}

}  // namespace

int main(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string flag = argv[i];
    auto value = [&]() -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "missing value for %s\n", flag.c_str());
        std::exit(2);
      }
      return argv[++i];
    };
    if (flag == "--workload") {
      options.workload = value();
    } else if (flag == "--scenario") {
      options.scenario = value();
    } else if (flag == "--rates") {
      options.rates = parse_rates(value());
    } else if (flag == "--duration") {
      options.duration_sec = std::atof(value());
    } else if (flag == "--warmup") {
      options.warmup_sec = std::atof(value());
    } else if (flag == "--pr-regions") {
      options.pr_regions = static_cast<unsigned>(std::atoi(value()));
    } else if (flag == "--trace") {
      options.trace_path = value();
    } else if (flag == "-h" || flag == "--help") {
      usage(argv[0]);
      return 0;
    } else {
      std::fprintf(stderr, "unknown flag %s\n", flag.c_str());
      usage(argv[0]);
      return 2;
    }
  }

  auto factory = make_factory(options.workload);
  if (factory == nullptr) {
    std::fprintf(stderr, "unknown workload '%s'\n",
                 options.workload.c_str());
    return 2;
  }
  const bool blastfunction = options.scenario == "bf";
  if (!blastfunction && options.scenario != "native") {
    std::fprintf(stderr, "unknown scenario '%s'\n", options.scenario.c_str());
    return 2;
  }
  if (options.rates.empty() || options.duration_sec <= 0) {
    usage(argv[0]);
    return 2;
  }
  if (!blastfunction && options.rates.size() > 3) {
    options.rates.resize(3);  // one native function per board
  }

  testbed::TestbedOptions bed_options;
  bed_options.pr_regions = options.pr_regions;
  testbed::Testbed bed(bed_options);

  std::printf("deploying %zu %s function(s) (%s scenario)...\n",
              options.rates.size(), options.workload.c_str(),
              blastfunction ? "BlastFunction" : "native");
  for (std::size_t i = 0; i < options.rates.size(); ++i) {
    const std::string name =
        options.workload + "-" + std::to_string(i + 1);
    Status deployed =
        blastfunction
            ? bed.deploy_blastfunction(name, factory)
            : bed.deploy_native(name, factory,
                                testbed::Testbed::kNodeNames[i]);
    if (!deployed.ok()) {
      std::fprintf(stderr, "deploy %s: %s\n", name.c_str(),
                   deployed.to_string().c_str());
      return 1;
    }
  }

  std::vector<loadgen::DriveSpec> specs;
  for (std::size_t i = 0; i < options.rates.size(); ++i) {
    loadgen::DriveSpec spec;
    spec.function = options.workload + "-" + std::to_string(i + 1);
    spec.target_rps = options.rates[i];
    spec.warmup = vt::Duration::from_seconds_f(options.warmup_sec);
    spec.duration = vt::Duration::from_seconds_f(options.duration_sec);
    specs.push_back(spec);
  }
  auto results = loadgen::drive_all(bed.gateway(), specs);

  std::printf("\n%-12s | %-4s | %9s | %9s | %10s | %10s\n", "function",
              "node", "p50", "mean", "processed", "target");
  std::printf("%s\n", std::string(70, '-').c_str());
  double total_processed = 0;
  double total_target = 0;
  for (const auto& r : results) {
    std::printf("%-12s | %-4s | %6.2f ms | %6.2f ms | %5.2f rq/s | "
                "%5.2f rq/s\n",
                r.function.c_str(), r.node.c_str(),
                r.latency_ms.empty() ? 0.0 : r.latency_ms.percentile(0.5),
                r.latency_ms.empty() ? 0.0 : r.latency_ms.mean(),
                r.processed_rps, r.target_rps);
    total_processed += r.processed_rps;
    total_target += r.target_rps;
  }
  const vt::Time from =
      vt::Time::zero() + vt::Duration::from_seconds_f(options.warmup_sec);
  const vt::Time to =
      from + vt::Duration::from_seconds_f(options.duration_sec);
  std::printf("%s\n", std::string(70, '-').c_str());
  std::printf("total: %.1f / %.0f rq/s | aggregate utilization %.1f%% of "
              "%zu00%%\n",
              total_processed, total_target,
              bed.aggregate_utilization_pct(from, to),
              bed.node_names().size());

  if (!options.trace_path.empty()) {
    trace::TraceBuilder builder;
    for (const std::string& node : bed.node_names()) {
      builder.add_board_occupancy(bed.manager(node), from, to);
    }
    Status written = builder.write_file(options.trace_path);
    if (!written.ok()) {
      std::fprintf(stderr, "trace export: %s\n",
                   written.to_string().c_str());
      return 1;
    }
    std::printf("trace: %zu spans -> %s\n", builder.span_count(),
                options.trace_path.c_str());
  }
  return 0;
}
