// Node autoscaling (paper §V future work): the Registry's metrics drive an
// AWS-F1-style provisioner. Load ramps up, the fleet grows; load stops, the
// extra nodes are reclaimed.
//
//   ./example_autoscaling_demo
#include <cstdio>
#include <memory>

#include "loadgen/loadgen.h"
#include "registry/autoscaler.h"
#include "testbed/testbed.h"
#include "workloads/sobel.h"

using namespace bf;

namespace {

class TestbedProvisioner final : public registry::NodeProvisioner {
 public:
  explicit TestbedProvisioner(testbed::Testbed* bed) : bed_(bed) {}
  Result<std::string> provision() override {
    const std::string name(1, static_cast<char>('D' + provisioned_++));
    std::printf("  [provisioner] spinning up FPGA node %s...\n",
                name.c_str());
    return bed_->provision_node(name);
  }
  Status decommission(const std::string& device_id) override {
    std::printf("  [provisioner] releasing %s...\n", device_id.c_str());
    return bed_->decommission_node(device_id.substr(5));
  }

 private:
  testbed::Testbed* bed_;
  int provisioned_ = 0;
};

}  // namespace

int main() {
  testbed::Testbed bed;
  TestbedProvisioner provisioner(&bed);
  registry::AutoscalerPolicy policy;
  policy.scale_up_utilization = 0.40;
  policy.scale_down_utilization = 0.05;
  policy.hysteresis = 1;
  registry::Autoscaler autoscaler(&bed.registry(), &provisioner, policy);

  auto factory = [] {
    return std::make_unique<workloads::SobelWorkload>(960, 540);
  };
  for (int i = 1; i <= 3; ++i) {
    BF_CHECK(
        bed.deploy_blastfunction("sobel-" + std::to_string(i), factory).ok());
  }

  auto drive_phase = [&](const char* label, double rps,
                         vt::Duration duration) {
    std::vector<loadgen::DriveSpec> specs;
    for (int i = 1; i <= 3; ++i) {
      loadgen::DriveSpec spec;
      spec.function = "sobel-" + std::to_string(i);
      spec.target_rps = rps;
      spec.warmup = vt::Duration::seconds(2);
      spec.duration = duration;
      specs.push_back(spec);
    }
    auto results = loadgen::drive_all(bed.gateway(), specs);
    double processed = 0;
    for (const auto& r : results) processed += r.processed_rps;
    std::printf("phase '%s': %.0f rq/s offered, %.1f rq/s served\n", label,
                rps * 3, processed);
  };

  std::printf("== Phase 1: heavy load on 3 nodes ==\n");
  drive_phase("heavy", 250, vt::Duration::seconds(8));
  auto action = autoscaler.evaluate();
  std::printf("autoscaler: mean utilization %.0f%% -> %s\n",
              100 * autoscaler.last_mean_utilization(),
              action == registry::Autoscaler::Action::kScaleUp
                  ? "SCALE UP"
                  : "no action");
  std::printf("fleet size: %zu devices\n\n",
              bed.registry().devices().size());

  std::printf("== Phase 2: new capacity absorbs a fourth tenant ==\n");
  BF_CHECK(bed.deploy_blastfunction("sobel-4", factory).ok());
  auto pod = bed.cluster().get_pod("sobel-4-0");
  std::printf("sobel-4 allocated to node %s (device %s)\n",
              pod->spec.node.c_str(),
              pod->spec.env.at(registry::Registry::kEnvDevice).c_str());
  BF_CHECK(bed.gateway().invoke("sobel-4").ok());
  bed.gateway().instance("sobel-4")->shutdown();

  std::printf("\n== Phase 3: load drains; idle capacity reclaimed ==\n");
  BF_CHECK(bed.gateway().remove("sobel-4").ok());
  // A light phase moves the metrics window into quiet territory.
  drive_phase("light", 1, vt::Duration::seconds(12));
  for (int i = 0; i < 2; ++i) {
    auto idle_action = autoscaler.evaluate();
    std::printf("autoscaler: mean utilization %.1f%% -> %s\n",
                100 * autoscaler.last_mean_utilization(),
                idle_action == registry::Autoscaler::Action::kScaleDown
                    ? "SCALE DOWN"
                    : "no action");
  }
  std::printf("fleet size: %zu devices (scale-ups: %llu, scale-downs: %llu)\n",
              bed.registry().devices().size(),
              static_cast<unsigned long long>(autoscaler.scale_ups()),
              static_cast<unsigned long long>(autoscaler.scale_downs()));
  return 0;
}
