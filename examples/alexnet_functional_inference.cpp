// Functional PipeCNN/AlexNet inference through BlastFunction.
//
// Runs a channel-scaled AlexNet (real arithmetic on the simulated board)
// through the full remote path — per-layer kernels across two command
// queues, exactly the host structure PipeCNN uses — and prints the top
// logits plus the modeled per-request timing for the full-size network.
//
//   ./example_alexnet_functional_inference
#include <algorithm>
#include <cstdio>
#include <memory>

#include "devmgr/device_manager.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/board.h"
#include "workloads/alexnet.h"

using namespace bf;

int main() {
  // Functional board: kernels really compute.
  sim::BoardConfig board_config;
  board_config.id = "fpga-demo";
  board_config.node = "B";
  board_config.host = sim::make_node_b();
  board_config.functional = true;
  sim::Board board(board_config);
  shm::Namespace node_shm;
  devmgr::DeviceManagerConfig manager_config;
  manager_config.id = "devmgr-demo";
  devmgr::DeviceManager manager(manager_config, &board, &node_shm);

  remote::ManagerAddress address;
  address.endpoint = &manager.endpoint();
  address.transport = net::local_control(board_config.host);
  address.node_shm = &node_shm;
  remote::RemoteRuntime runtime({address});

  // Channel-scaled network so the functional math finishes quickly.
  workloads::AlexNetOptions options;
  options.channel_scale = 16;
  options.functional = true;
  workloads::AlexNetWorkload net(options);

  ocl::Session session("alexnet-demo");
  auto devices = runtime.devices();
  BF_CHECK(devices.ok());
  auto context = runtime.create_context(devices.value()[0].id, session);
  BF_CHECK(context.ok());

  std::printf("Network: %zu layers, %.1f MMACs (scaled 1/%u)\n",
              net.layer_count(), net.total_macs() / 1e6,
              options.channel_scale);
  Status s = net.setup(*context.value());
  if (!s.ok()) {
    std::printf("setup failed: %s\n", s.to_string().c_str());
    return 1;
  }

  const vt::Time before = session.now();
  s = net.handle_request(*context.value());
  if (!s.ok()) {
    std::printf("inference failed: %s\n", s.to_string().c_str());
    return 1;
  }
  std::printf("Scaled inference: %.2f ms modeled\n",
              (session.now() - before).ms());

  const auto& logits = net.last_logits();
  std::vector<std::size_t> order(logits.size());
  for (std::size_t i = 0; i < order.size(); ++i) order[i] = i;
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return logits[a] > logits[b];
  });
  std::printf("Top-5 logits:");
  for (std::size_t i = 0; i < 5 && i < order.size(); ++i) {
    std::printf("  [%zu]=%.4f", order[i], logits[order[i]]);
  }
  std::printf("\n");

  // Timing model for the full-size network (timing-only board).
  workloads::AlexNetWorkload full;  // scale 1
  std::printf("\nFull AlexNet: %zu layers, %.0f MMACs -> ~%.0f ms of device "
              "time per request at the calibrated PipeCNN rate\n",
              full.layer_count(), full.total_macs() / 1e6,
              full.total_macs() / 17.2e9 * 1e3);
  return 0;
}
