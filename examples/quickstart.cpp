// Quickstart: share one simulated FPGA through BlastFunction.
//
// Builds the smallest possible deployment — one board, one Device Manager —
// connects through the Remote OpenCL Library exactly like an application
// would link the real OpenCL library, programs a vector-add bitstream and
// runs a kernel. The identical host code runs against the Native runtime at
// the end to demonstrate the transparency property.
//
//   ./example_quickstart
#include <cstdio>
#include <numeric>
#include <vector>

#include "devmgr/device_manager.h"
#include "native/native_runtime.h"
#include "remote/remote_runtime.h"
#include "shm/namespace.h"
#include "sim/bitstream.h"
#include "sim/board.h"

using namespace bf;

// Plain OpenCL-style host code: unaware of whether the runtime is native or
// remote. This is the code a BlastFunction user writes once.
Status run_vector_add(ocl::Runtime& runtime, const char* label) {
  ocl::Session session("quickstart");

  auto devices = runtime.devices();
  if (!devices.ok()) return devices.status();
  std::printf("[%s] found device: %s on node %s\n", label,
              devices.value()[0].name.c_str(),
              devices.value()[0].node.c_str());

  auto context = runtime.create_context(devices.value()[0].id, session);
  if (!context.ok()) return context.status();
  if (Status s = context.value()->program(sim::BitstreamLibrary::kVadd);
      !s.ok()) {
    return s;
  }

  constexpr std::size_t kN = 1 << 16;
  std::vector<float> a(kN), b(kN), c(kN);
  std::iota(a.begin(), a.end(), 0.0F);
  std::iota(b.begin(), b.end(), 1.0F);

  auto buf_a = context.value()->create_buffer(kN * sizeof(float));
  auto buf_b = context.value()->create_buffer(kN * sizeof(float));
  auto buf_c = context.value()->create_buffer(kN * sizeof(float));
  if (!buf_a.ok() || !buf_b.ok() || !buf_c.ok()) return buf_a.status();
  auto queue = context.value()->create_queue();
  if (!queue.ok()) return queue.status();

  const vt::Time start = session.now();
  (void)queue.value()->enqueue_write(
      buf_a.value(), 0, as_bytes(a.data(), kN * sizeof(float)), false);
  (void)queue.value()->enqueue_write(
      buf_b.value(), 0, as_bytes(b.data(), kN * sizeof(float)), false);

  auto kernel = context.value()->create_kernel("vadd");
  if (!kernel.ok()) return kernel.status();

  // Two requests: the first absorbs any pending board reconfiguration time,
  // the second shows the steady-state round trip.
  vt::Time warm_start = start;
  for (int round = 0; round < 2; ++round) {
    warm_start = session.now();
    kernel.value().set_arg(0, buf_a.value());
    kernel.value().set_arg(1, buf_b.value());
    kernel.value().set_arg(2, buf_c.value());
    kernel.value().set_arg(3, static_cast<std::int64_t>(kN));
    (void)queue.value()->enqueue_kernel(kernel.value(), {kN, 1, 1});
    if (Status s = queue.value()
                       ->enqueue_read(buf_c.value(), 0,
                                      as_writable_bytes(c.data(),
                                                        kN * sizeof(float)),
                                      true)
                       .status();
        !s.ok()) {
      return s;
    }
  }
  std::printf("[%s] c[0]=%.1f c[last]=%.1f  warm request took %.3f ms of "
              "modeled time\n",
              label, c.front(), c.back(), (session.now() - warm_start).ms());
  return Status::Ok();
}

int main() {
  // --- The provider side: a board and its Device Manager --------------------
  sim::BoardConfig board_config;
  board_config.id = "fpga-demo";
  board_config.node = "B";
  board_config.host = sim::make_node_b();
  sim::Board board(board_config);

  shm::Namespace node_shm;  // the node's /dev/shm
  devmgr::DeviceManagerConfig manager_config;
  manager_config.id = "devmgr-demo";
  devmgr::DeviceManager manager(manager_config, &board, &node_shm);

  // --- The tenant side: the Remote OpenCL Library ---------------------------
  remote::ManagerAddress address;
  address.endpoint = &manager.endpoint();
  address.transport = net::local_control(board_config.host);
  address.node_shm = &node_shm;
  remote::RemoteRuntime blastfunction({address});

  Status s = run_vector_add(blastfunction, "BlastFunction");
  if (!s.ok()) {
    std::printf("error: %s\n", s.to_string().c_str());
    return 1;
  }

  // --- Transparency: the very same host code, native runtime ---------------
  native::NativeRuntime native_runtime({&board});
  s = run_vector_add(native_runtime, "Native");
  if (!s.ok()) {
    std::printf("error: %s\n", s.to_string().c_str());
    return 1;
  }

  std::printf("\nDevice manager executed %llu tasks / %llu operations.\n",
              static_cast<unsigned long long>(manager.tasks_executed()),
              static_cast<unsigned long long>(manager.ops_executed()));
  return 0;
}
